module Webserver = R2c_workloads.Webserver
module Table = R2c_util.Table
module Stats = R2c_util.Stats

type result = {
  flavour : string;
  machine : string;
  base_throughput : float;
  r2c_throughput : float;
  drop : float;
}

let run ?(seeds = [ 7; 19; 41; 67; 83 ]) ?(requests = 400) () =
  let cfg = R2c_core.Dconfig.full () in
  let machines = R2c_machine.Cost.[ i9_9900k; epyc_rome ] in
  List.concat_map
    (fun profile ->
      List.map
        (fun (fl, name) ->
          let program = Webserver.server fl ~requests in
          let base =
            (Measure.run ~profile (R2c_compiler.Driver.compile program)).steady_cycles
          in
          (* Median of five runs at saturation, per the paper. *)
          let cycles =
            Stats.median
              (List.map
                 (fun seed ->
                   (Measure.run ~profile (R2c_core.Pipeline.compile ~seed cfg program))
                     .steady_cycles)
                 seeds)
          in
          let base_throughput = Webserver.throughput_of_cycles ~requests base in
          let r2c_throughput = Webserver.throughput_of_cycles ~requests cycles in
          {
            flavour = name;
            machine = profile.R2c_machine.Cost.name;
            base_throughput;
            r2c_throughput;
            drop = 1.0 -. (r2c_throughput /. base_throughput);
          })
        [ (`Nginx, "nginx"); (`Apache, "apache") ])
    machines

let print results =
  Table.print ~title:"Webserver throughput (requests per megacycle, saturated)"
    ~headers:[ "server"; "machine"; "baseline"; "R2C"; "drop"; "paper drop" ]
    ~aligns:[ Table.Left; Left; Right; Right; Right; Right ]
    (List.map
       (fun r ->
         let paper =
           if r.machine = "i9-9900K" then
             match List.assoc_opt r.flavour Paper.webserver_drop_intel with
             | Some d -> Table.pct d
             | None -> "-"
           else
             let lo, hi = Paper.webserver_drop_amd in
             Printf.sprintf "%s-%s" (Table.pct lo) (Table.pct hi)
         in
         [
           r.flavour;
           r.machine;
           Printf.sprintf "%.1f" r.base_throughput;
           Printf.sprintf "%.1f" r.r2c_throughput;
           Table.pct r.drop;
           paper;
         ])
       results);
  (* The saturation sweep backing the measurement point. *)
  match results with
  | r :: _ ->
      let curve =
        Webserver.saturation_curve ~cpu_rate:r.base_throughput
          ~connections:[ 4; 8; 16; 24; 32; 48; 64 ]
      in
      Table.print ~title:"saturation sweep (baseline nginx)"
        ~headers:[ "connections"; "req/Mcycle" ]
        ~aligns:[ Table.Right; Right ]
        (List.map (fun (c, v) -> [ string_of_int c; Printf.sprintf "%.1f" v ]) curve)
  | [] -> ()
