module Dconfig = R2c_core.Dconfig
module Table = R2c_util.Table

type row = {
  label : string;
  max : float;
  geomean : float;
  per_benchmark : (string * float) list;
}

let components =
  [
    ("Push", Dconfig.btra_push_only);
    ("AVX", Dconfig.btra_avx_only);
    ("BTDP", Dconfig.btdp_only);
    ("Prolog", Dconfig.prolog_only);
    ("Layout", Dconfig.layout_only);
    ("OIA", Dconfig.oia_only);
  ]

let run ?(seeds = [ 3; 11; 27 ]) () =
  List.map
    (fun (label, cfg) ->
      let per_benchmark = Measure.suite_overheads ~seeds cfg in
      let max, geomean = Measure.geomean_max per_benchmark in
      { label; max; geomean; per_benchmark })
    components

let print rows =
  let paper label =
    match List.assoc_opt label (List.map (fun (l, m, g) -> (l, (m, g))) Paper.table1) with
    | Some (m, g) -> (Table.ratio m, Table.ratio g)
    | None ->
        if label = "OIA" then (Table.ratio Paper.oia_max, Table.ratio Paper.oia_geomean)
        else ("-", "-")
  in
  Table.print ~title:"Table 1: component overheads (ratio to baseline)"
    ~headers:[ "component"; "max"; "geomean"; "paper max"; "paper geomean" ]
    ~aligns:[ Table.Left; Right; Right; Right; Right ]
    (List.map
       (fun r ->
         let pm, pg = paper r.label in
         [ r.label; Table.ratio r.max; Table.ratio r.geomean; pm; pg ])
       rows)
