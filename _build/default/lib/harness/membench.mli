(** Section 6.2.5's memory overhead: maxrss of the SPEC-shaped suite and
    the webserver workers under full R2C, with the BTDP guard-page share
    isolated by differencing against a full-minus-BTDP build. *)

type row = {
  name : string;
  base_kb : int;
  r2c_kb : int;
  overhead : float;  (** fraction *)
  btdp_share : float;  (** of the overhead attributable to BTDP pages *)
}

val run : ?seed:int -> unit -> row list * row list  (** (spec, webserver) *)

val print : row list * row list -> unit
