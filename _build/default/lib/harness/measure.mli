(** Measurement helpers shared by the experiment harnesses. *)

type stats = {
  total_cycles : float;
  steady_cycles : float;  (** from [main] entry to exit — startup excluded,
                              matching SPEC's amortization of one-time costs *)
  calls : int;
  insns : int;
  maxrss_bytes : int;
}

(** [run ?profile img] — execute to completion; fails on crash or non-zero
    exit. *)
val run : ?profile:R2c_machine.Cost.profile -> R2c_machine.Image.t -> stats

(** [overhead ?profile ~seeds cfg program] — median over [seeds] of the
    steady-cycle ratio R2C(cfg)/baseline. *)
val overhead :
  ?profile:R2c_machine.Cost.profile ->
  seeds:int list ->
  R2c_core.Dconfig.t ->
  Ir.program ->
  float

(** [suite_overheads ?profile ~seeds cfg] — (benchmark, overhead) for the
    whole SPEC-shaped suite. *)
val suite_overheads :
  ?profile:R2c_machine.Cost.profile ->
  seeds:int list ->
  R2c_core.Dconfig.t ->
  (string * float) list

(** [geomean_max rows] — (max, geomean) of the overhead column. *)
val geomean_max : (string * float) list -> float * float
