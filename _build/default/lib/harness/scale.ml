module Table = R2c_util.Table
open R2c_machine

type row = {
  funcs : int;
  ir_instrs : int;
  text_kb : int;
  data_kb : int;
  compile_seconds : float;
  run_ok : bool;
}

let run ?(sizes = [ 500; 2000; 8000 ]) () =
  let check program =
    let expected =
      match Interp.run ~fuel:200_000_000 program with
      | Ok r -> r.Interp.output
      | Error e -> failwith (Interp.error_to_string e)
    in
    let t0 = Sys.time () in
    let img = R2c_core.Pipeline.compile ~seed:6 (R2c_core.Dconfig.full ()) program in
    let compile_seconds = Sys.time () -. t0 in
    let proc = Process.start ~fuel:200_000_000 img in
    let run_ok =
      match Process.run proc with
      | Process.Exited 0 -> Process.output proc = expected
      | Process.Crashed _ | Process.Exited _ | Process.Timeout -> false
    in
    (img, compile_seconds, run_ok)
  in
  let browser_row =
    let program = R2c_workloads.Browser.program ~pages:24 in
    let img, compile_seconds, run_ok = check program in
    {
      funcs = List.length program.Ir.funcs;
      ir_instrs = Ir.program_size program;
      text_kb = img.Image.text_len / 1024;
      data_kb = img.Image.data_len / 1024;
      compile_seconds;
      run_ok;
    }
  in
  browser_row
  :: List.map
    (fun funcs ->
      let program = R2c_workloads.Genprog.generate ~seed:42 ~funcs in
      let img, compile_seconds, run_ok = check program in
      {
        funcs;
        ir_instrs = Ir.program_size program;
        text_kb = img.Image.text_len / 1024;
        data_kb = img.Image.data_len / 1024;
        compile_seconds;
        run_ok;
      })
    sizes

let print rows =
  Table.print
    ~title:
      "Scalability: full-R2C compilation (first row: the browser-shaped workload)"
    ~headers:[ "functions"; "IR instrs"; "text KB"; "data KB"; "compile s"; "correct" ]
    ~aligns:[ Table.Right; Right; Right; Right; Right; Left ]
    (List.map
       (fun r ->
         [
           string_of_int r.funcs;
           string_of_int r.ir_instrs;
           string_of_int r.text_kb;
           string_of_int r.data_kb;
           Printf.sprintf "%.2f" r.compile_seconds;
           (if r.run_ok then "yes" else "NO");
         ])
       rows);
  print_endline
    "paper: compiles WebKit (4.5M lines) and Chromium (32M lines); browser test\n\
     suites pass after disabling R2C for 3 functions (Section 6.3/7.4.2)."
