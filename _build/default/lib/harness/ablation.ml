module Dconfig = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
module Probability = R2c_core.Probability
module Boobytrap = R2c_core.Boobytrap
module Btra = R2c_core.Btra
module Stats = R2c_util.Stats
module Table = R2c_util.Table
module Rng = R2c_util.Rng

type row = { label : string; overhead : float option; metric : string }

let subset = [ "perlbench"; "mcf"; "omnetpp"; "deepsjeng"; "nab" ]

let subset_overhead ~seed cfg =
  Stats.geomean
    (List.map
       (fun name ->
         let b = R2c_workloads.Spec.find name in
         let base =
           (Measure.run (R2c_compiler.Driver.compile b.program)).Measure.steady_cycles
         in
         (Measure.run (Pipeline.compile ~seed cfg b.program)).Measure.steady_cycles /. base)
       subset)

let btra ?(setup = Dconfig.Avx) ?(check = false) total =
  { Dconfig.total; setup; to_builtins = true; max_post = 4; check_after_return = check }

let btra_count ?(values = [ 2; 4; 6; 10; 16; 20 ]) ?(seed = 13) () =
  List.map
    (fun r ->
      let cfg = { Dconfig.btra_avx_only with btra = Some (btra r) } in
      {
        label = Printf.sprintf "R = %d" r;
        overhead = Some (subset_overhead ~seed cfg);
        metric =
          Printf.sprintf "guess p = %.4f, 4-chain p = %.2e"
            (Probability.guess_return_address ~btras:r)
            (Probability.guess_n_return_addresses ~btras:r ~n:4);
      })
    values

let setups ?(seed = 13) () =
  let mk label cfg metric = { label; overhead = Some (subset_overhead ~seed cfg); metric } in
  [
    mk "push" Dconfig.btra_push_only "Section 5.1 baseline sequence";
    mk "sse" Dconfig.btra_sse_only "Section 7.1 fallback (16-byte)";
    mk "avx2" Dconfig.btra_avx_only "the paper's optimized setup";
    mk "avx512" Dconfig.btra_avx512_only "Section 7.1: half the moves";
    mk "avx512 R=20"
      { Dconfig.btra_avx512_only with btra = Some (btra ~setup:Dconfig.Avx512 20) }
      "Section 7.1: twice the BTRAs instead";
    mk "avx2 + checks"
      { Dconfig.btra_avx_only with btra = Some (btra ~check:true 10) }
      "Section 7.3 consistency checks";
  ]

let btdp_density ?(values = [ 1; 3; 5; 8 ]) ?(seed = 13) () =
  List.map
    (fun mx ->
      let cfg =
        {
          Dconfig.btdp_only with
          btdp =
            Some
              {
                Dconfig.min_per_func = 0;
                max_per_func = mx;
                array_size = 48;
                guard_pages = 16;
                alloc_rounds = 64;
                decoys = 2;
                skip_frameless = true;
              };
        }
      in
      {
        label = Printf.sprintf "0-%d per function" mx;
        overhead = Some (subset_overhead ~seed cfg);
        metric =
          Printf.sprintf "E(B) per frame = %.1f"
            (Probability.expected_btdps_in_leak ~min_per_func:0 ~max_per_func:mx ~frames:1);
      })
    values

let guard_pages ?(values = [ 4; 16; 64 ]) ?(seed = 13) () =
  let program = (R2c_workloads.Spec.find "xz").R2c_workloads.Spec.program in
  let base_rss =
    (Measure.run (R2c_compiler.Driver.compile program)).Measure.maxrss_bytes
  in
  List.map
    (fun gp ->
      let cfg =
        {
          (Dconfig.full ()) with
          btdp =
            Some
              {
                Dconfig.min_per_func = 0;
                max_per_func = 5;
                array_size = 48;
                guard_pages = gp;
                alloc_rounds = gp * 4;
                decoys = 2;
                skip_frameless = true;
              };
        }
      in
      let rss = (Measure.run (Pipeline.compile ~seed cfg program)).Measure.maxrss_bytes in
      {
        label = Printf.sprintf "%d guard pages" gp;
        overhead = None;
        metric =
          Printf.sprintf "maxrss %+d KB (%.1f%%)" ((rss - base_rss) / 1024)
            (float_of_int (rss - base_rss) /. float_of_int base_rss *. 100.0);
      })
    values

(* Property C combinatorics: how often do two call sites end up with the
   identical BTRA set as the booby-trap pool shrinks? *)
let pool_size ?(values = [ 1; 2; 4; 16; 48 ]) ?(seed = 13) () =
  (* A bigger call-site population makes the combinatorics visible. *)
  let program = R2c_workloads.Genprog.generate ~seed:7 ~funcs:40 in
  List.map
    (fun count ->
      let rng = Rng.create seed in
      let _, targets = Boobytrap.generate rng ~count in
      let pool = Boobytrap.pool_of_targets targets in
      let metric =
        match Btra.build ~rng ~cfg:(btra ~setup:Dconfig.Push 10) ~pool program with
        | t ->
            let sets =
              Hashtbl.fold
                (fun _ (p : R2c_compiler.Opts.callsite_plan) acc ->
                  List.sort compare (p.pre_syms @ p.post_syms) :: acc)
                t.Btra.plans []
            in
            let n = List.length sets in
            let distinct = List.length (List.sort_uniq compare sets) in
            Printf.sprintf "%d/%d call-site sets distinct (%d targets in pool)" distinct n
              (Array.length targets)
        | exception Invalid_argument _ ->
            Printf.sprintf
              "pool of %d targets cannot even fill one site's distinct set (property A)"
              (Array.length targets)
      in
      { label = Printf.sprintf "%d trap functions" count; overhead = None; metric })
    values

let call_overhead_correlation ?(seed = 13) () =
  let cfg = Dconfig.full () in
  let rows =
    List.map
      (fun (b : R2c_workloads.Spec.benchmark) ->
        let stats = Measure.run (R2c_compiler.Driver.compile b.program) in
        let oh =
          (Measure.run (Pipeline.compile ~seed cfg b.program)).Measure.steady_cycles
          /. stats.Measure.steady_cycles
        in
        (b.name, stats.Measure.calls, oh))
      (R2c_workloads.Spec.all ())
  in
  (* Correlate call *density* (calls per kilocycle), as the paper's
     reasoning does implicitly: absolute counts conflate run length. *)
  let calls = List.map (fun (_, c, _) -> float_of_int c) rows in
  let ohs = List.map (fun (_, _, o) -> o) rows in
  (Stats.pearson calls ohs, rows)

let print_rows title rows =
  Table.print ~title
    ~headers:[ "configuration"; "overhead"; "metric" ]
    (List.map
       (fun r ->
         [
           r.label;
           (match r.overhead with Some o -> Table.pct (o -. 1.0) | None -> "-");
           r.metric;
         ])
       rows)

let print_all () =
  print_rows "Ablation: BTRA count (security vs performance)" (btra_count ());
  print_rows "Ablation: setup sequences (Sections 5.1, 7.1, 7.3)" (setups ());
  print_rows "Ablation: BTDP density" (btdp_density ());
  print_rows "Ablation: guard-page pool vs memory" (guard_pages ());
  print_rows "Ablation: booby-trap pool vs set reuse (property C)" (pool_size ());
  let r, rows = call_overhead_correlation () in
  Table.print ~title:"Call frequency vs overhead (Section 7.1)"
    ~headers:[ "benchmark"; "calls"; "overhead" ]
    (List.map
       (fun (n, c, o) -> [ n; string_of_int c; Table.pct (o -. 1.0) ])
       rows);
  Printf.printf
    "Pearson r = %.2f: correlated but, as the paper notes, insufficient to predict\n\
     (perlbench has ~1/3 of omnetpp's calls yet comparable overhead).\n"
    r
