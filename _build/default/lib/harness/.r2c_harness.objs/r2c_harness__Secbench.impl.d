lib/harness/secbench.ml: Addr Array Cpu Float List Mem Paper Printf Process R2c_attacks R2c_core R2c_defenses R2c_machine R2c_util R2c_workloads
