lib/harness/ablation.ml: Array Hashtbl List Measure Printf R2c_compiler R2c_core R2c_util R2c_workloads
