lib/harness/membench.mli:
