lib/harness/secbench.mli:
