lib/harness/table2.ml: Float List Measure Printf R2c_compiler R2c_util R2c_workloads
