lib/harness/table3.ml: List Measure R2c_attacks R2c_compiler R2c_defenses R2c_util R2c_workloads String
