lib/harness/webbench.mli:
