lib/harness/scale.mli:
