lib/harness/paper.ml:
