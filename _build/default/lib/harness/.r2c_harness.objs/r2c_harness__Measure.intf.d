lib/harness/measure.mli: Ir R2c_core R2c_machine
