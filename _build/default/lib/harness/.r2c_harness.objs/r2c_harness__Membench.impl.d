lib/harness/membench.ml: List Measure Paper Printf R2c_compiler R2c_core R2c_util R2c_workloads
