lib/harness/figure6.ml: Float List Measure Paper Printf R2c_core R2c_machine R2c_util String
