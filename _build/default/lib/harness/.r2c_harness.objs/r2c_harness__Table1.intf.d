lib/harness/table1.mli:
