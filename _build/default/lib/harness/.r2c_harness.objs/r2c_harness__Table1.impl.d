lib/harness/table1.ml: List Measure Paper R2c_core R2c_util
