lib/harness/scale.ml: Image Interp Ir List Printf Process R2c_core R2c_machine R2c_util R2c_workloads Sys
