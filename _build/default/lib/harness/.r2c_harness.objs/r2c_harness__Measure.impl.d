lib/harness/measure.ml: Cost Image List Process R2c_compiler R2c_core R2c_machine R2c_util R2c_workloads
