lib/harness/paper.mli:
