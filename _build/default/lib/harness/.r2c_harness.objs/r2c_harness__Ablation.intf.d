lib/harness/ablation.mli:
