(** The compiler's intermediate representation.

    A small, explicitly-typed-free register IR: functions of basic blocks
    over dense virtual registers, static stack slots (the unit of the stack
    slot randomization of Section 4.2), globals with symbolic initialisers
    (the unit of global variable shuffling), direct/indirect/library calls.
    Workload programs, the vulnerable evaluation target, and the
    R2C-generated runtime constructor are all expressed in it. *)

type var = int
(** Virtual register, dense in [0, nvars). Parameters are vars
    [0..nparams-1]. *)

type label = int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Const of int
  | Var of var
  | Global of string  (** address of a global *)
  | Func of string  (** address of a function *)

type callee =
  | Direct of string
  | Indirect of operand  (** through a function pointer *)
  | Builtin of string  (** intercepted library function *)

type instr =
  | Mov of var * operand
  | Binop of var * binop * operand * operand
  | Cmp of var * cmp * operand * operand  (** 0/1 result *)
  | Load of var * operand * int  (** var := [base + off] (64-bit) *)
  | Load8 of var * operand * int
  | Store of operand * int * operand  (** [base + off] := value *)
  | Store8 of operand * int * operand
  | Slot_addr of var * int  (** var := address of local stack slot i *)
  | Call of var option * callee * operand list

type term =
  | Ret of operand option
  | Br of label
  | Cond_br of operand * label * label  (** nonzero -> first label *)

type block = { lbl : label; body : instr list; term : term }

type func = {
  name : string;
  nparams : int;
  nvars : int;
  slots : int array;  (** local stack slot sizes in bytes *)
  blocks : block list;  (** entry block first *)
}

type init_item =
  | Word of int
  | Sym_addr of string  (** address of a function or global *)
  | Sym_addr_off of string * int
      (** symbol address plus byte offset — BTRA targets inside booby-trap
          function bodies *)
  | Str of string  (** raw bytes, NUL included only if given *)

type global = {
  gname : string;
  gsize : int;  (** bytes; at least the initialiser footprint *)
  ginit : init_item list;
}

type program = { funcs : func list; globals : global list; main : string }

val find_func : program -> string -> func option
val find_global : program -> string -> global option

(** [init_footprint items] — bytes covered by the initialiser list. *)
val init_footprint : init_item list -> int

(** [program_size p] — rough size: number of instructions. *)
val program_size : program -> int
