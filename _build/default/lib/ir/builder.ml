type block_acc = {
  lbl : Ir.label;
  mutable body_rev : Ir.instr list;
  mutable term : Ir.term option;
}

type t = {
  name : string;
  nparams : int;
  mutable next_var : int;
  mutable slots_rev : int list;
  mutable nslots : int;
  mutable blocks : block_acc list;  (* creation order, reversed *)
  mutable current : block_acc;
  mutable next_label : int;
}

let func name ~nparams =
  let entry = { lbl = 0; body_rev = []; term = None } in
  {
    name;
    nparams;
    next_var = nparams;
    slots_rev = [];
    nslots = 0;
    blocks = [ entry ];
    current = entry;
    next_label = 1;
  }

let param i = Ir.Var i

let fresh t =
  let v = t.next_var in
  t.next_var <- v + 1;
  v

let slot t size =
  let i = t.nslots in
  t.slots_rev <- size :: t.slots_rev;
  t.nslots <- i + 1;
  i

let new_block t =
  let lbl = t.next_label in
  t.next_label <- lbl + 1;
  t.blocks <- { lbl; body_rev = []; term = None } :: t.blocks;
  lbl

let switch_to t lbl =
  match List.find_opt (fun b -> b.lbl = lbl) t.blocks with
  | Some b -> t.current <- b
  | None -> invalid_arg (Printf.sprintf "Builder.switch_to: unknown label %d" lbl)

let emit t i =
  if t.current.term <> None then
    invalid_arg
      (Printf.sprintf "Builder: emitting into terminated block %d of %s" t.current.lbl t.name);
  t.current.body_rev <- i :: t.current.body_rev

let terminate t term =
  if t.current.term <> None then
    invalid_arg
      (Printf.sprintf "Builder: block %d of %s already terminated" t.current.lbl t.name);
  t.current.term <- Some term

let mov t op =
  let v = fresh t in
  emit t (Ir.Mov (v, op));
  Ir.Var v

let binop t op a b =
  let v = fresh t in
  emit t (Ir.Binop (v, op, a, b));
  Ir.Var v

let cmp t c a b =
  let v = fresh t in
  emit t (Ir.Cmp (v, c, a, b));
  Ir.Var v

let load t base off =
  let v = fresh t in
  emit t (Ir.Load (v, base, off));
  Ir.Var v

let load8 t base off =
  let v = fresh t in
  emit t (Ir.Load8 (v, base, off));
  Ir.Var v

let store t base off value = emit t (Ir.Store (base, off, value))

let store8 t base off value = emit t (Ir.Store8 (base, off, value))

let slot_addr t i =
  let v = fresh t in
  emit t (Ir.Slot_addr (v, i));
  Ir.Var v

let call t callee args =
  let v = fresh t in
  emit t (Ir.Call (Some v, callee, args));
  Ir.Var v

let call_void t callee args = emit t (Ir.Call (None, callee, args))

let ret t op = terminate t (Ir.Ret op)
let br t lbl = terminate t (Ir.Br lbl)
let cond_br t c l1 l2 = terminate t (Ir.Cond_br (c, l1, l2))

let finish t =
  let blocks =
    List.rev_map
      (fun b ->
        match b.term with
        | Some term -> { Ir.lbl = b.lbl; body = List.rev b.body_rev; term }
        | None ->
            invalid_arg
              (Printf.sprintf "Builder.finish: block %d of %s not terminated" b.lbl t.name))
      t.blocks
  in
  {
    Ir.name = t.name;
    nparams = t.nparams;
    nvars = t.next_var;
    slots = Array.of_list (List.rev t.slots_rev);
    blocks;
  }

let global gname ~size ginit =
  let footprint = Ir.init_footprint ginit in
  if footprint > size then
    invalid_arg (Printf.sprintf "Builder.global %s: initialiser exceeds size" gname);
  { Ir.gname; gsize = size; ginit }

let program ~main funcs globals = { Ir.funcs; globals; main }
