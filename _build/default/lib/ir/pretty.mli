(** Textual dump of IR programs, for debugging and golden tests. *)

val operand : Ir.operand -> string
val instr : Ir.instr -> string
val term : Ir.term -> string
val func : Ir.func -> string
val program : Ir.program -> string
