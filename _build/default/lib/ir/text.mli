(** Textual IR: a parseable surface syntax, so programs can live in files
    and the [r2cc] driver works like a real compiler.

    Syntax sketch (see [examples/triangle.r2c]):

    {v
    global counter : 8 = word 5
    global table : 16 = addr f, str "hi\00"

    func f(v0) {
      slots 64, 8
    L0:
      v1 = add v0, 1
      v2 = cmp.lt v1, @counter
      v3 = load [v1 + 8]
      store [v1 + 0], v3
      v4 = slot 0
      v5 = call f(v1)
      v6 = calli v4(v1)
      call !print_int(v5)
      cbr v2, L1, L2
    L1:
      br L2
    L2:
      ret v1
    }
    v}

    Operands: integer literals (decimal or 0x hex, negative allowed),
    [v<n>] virtual registers, [@name] global addresses, [&name] function
    addresses. Callee forms: [name] direct, [!name] builtin, [calli op]
    indirect. The first block of a function is its entry; [main] must be
    defined.

    [to_string] prints this exact syntax; [parse (to_string p)] returns a
    program structurally equal to [p] (the round-trip property test). *)

type error = { line : int; message : string }

val error_to_string : error -> string

val to_string : Ir.program -> string

val parse : string -> (Ir.program, error) result
