let operand = function
  | Ir.Const n -> string_of_int n
  | Ir.Var v -> Printf.sprintf "v%d" v
  | Ir.Global g -> "@" ^ g
  | Ir.Func f -> "&" ^ f

let binop = function
  | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul" | Ir.Div -> "div"
  | Ir.Rem -> "rem" | Ir.And -> "and" | Ir.Or -> "or" | Ir.Xor -> "xor"
  | Ir.Shl -> "shl" | Ir.Shr -> "shr" | Ir.Sar -> "sar"

let cmp = function
  | Ir.Eq -> "eq" | Ir.Ne -> "ne" | Ir.Lt -> "lt"
  | Ir.Le -> "le" | Ir.Gt -> "gt" | Ir.Ge -> "ge"

let callee = function
  | Ir.Direct f -> f
  | Ir.Indirect op -> "*" ^ operand op
  | Ir.Builtin b -> "!" ^ b

let instr = function
  | Ir.Mov (v, op) -> Printf.sprintf "v%d = %s" v (operand op)
  | Ir.Binop (v, op, a, b) ->
      Printf.sprintf "v%d = %s %s, %s" v (binop op) (operand a) (operand b)
  | Ir.Cmp (v, c, a, b) ->
      Printf.sprintf "v%d = cmp.%s %s, %s" v (cmp c) (operand a) (operand b)
  | Ir.Load (v, base, off) -> Printf.sprintf "v%d = load [%s+%d]" v (operand base) off
  | Ir.Load8 (v, base, off) -> Printf.sprintf "v%d = load8 [%s+%d]" v (operand base) off
  | Ir.Store (base, off, value) ->
      Printf.sprintf "store [%s+%d], %s" (operand base) off (operand value)
  | Ir.Store8 (base, off, value) ->
      Printf.sprintf "store8 [%s+%d], %s" (operand base) off (operand value)
  | Ir.Slot_addr (v, i) -> Printf.sprintf "v%d = slot %d" v i
  | Ir.Call (dst, c, args) ->
      let lhs = match dst with Some v -> Printf.sprintf "v%d = " v | None -> "" in
      Printf.sprintf "%scall %s(%s)" lhs (callee c) (String.concat ", " (List.map operand args))

let term = function
  | Ir.Ret None -> "ret"
  | Ir.Ret (Some op) -> "ret " ^ operand op
  | Ir.Br l -> Printf.sprintf "br L%d" l
  | Ir.Cond_br (c, l1, l2) -> Printf.sprintf "br %s ? L%d : L%d" (operand c) l1 l2

let func (f : Ir.func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%d params, %d vars, slots [%s]):\n" f.name f.nparams f.nvars
       (String.concat ";" (Array.to_list (Array.map string_of_int f.slots))));
  List.iter
    (fun (b : Ir.block) ->
      Buffer.add_string buf (Printf.sprintf "L%d:\n" b.lbl);
      List.iter (fun i -> Buffer.add_string buf ("  " ^ instr i ^ "\n")) b.body;
      Buffer.add_string buf ("  " ^ term b.term ^ "\n"))
    f.blocks;
  Buffer.contents buf

let global (g : Ir.global) =
  let item = function
    | Ir.Word n -> string_of_int n
    | Ir.Sym_addr s -> "&" ^ s
    | Ir.Sym_addr_off (s, o) -> Printf.sprintf "&%s+%d" s o
    | Ir.Str s -> Printf.sprintf "%S" s
  in
  Printf.sprintf "global %s[%d] = {%s}\n" g.gname g.gsize
    (String.concat ", " (List.map item g.ginit))

let program (p : Ir.program) =
  String.concat ""
    (List.map global p.globals @ List.map func p.funcs)
  ^ Printf.sprintf "main = %s\n" p.main
