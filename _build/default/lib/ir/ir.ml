type var = int
type label = int

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type operand =
  | Const of int
  | Var of var
  | Global of string
  | Func of string

type callee =
  | Direct of string
  | Indirect of operand
  | Builtin of string

type instr =
  | Mov of var * operand
  | Binop of var * binop * operand * operand
  | Cmp of var * cmp * operand * operand
  | Load of var * operand * int
  | Load8 of var * operand * int
  | Store of operand * int * operand
  | Store8 of operand * int * operand
  | Slot_addr of var * int
  | Call of var option * callee * operand list

type term =
  | Ret of operand option
  | Br of label
  | Cond_br of operand * label * label

type block = { lbl : label; body : instr list; term : term }

type func = {
  name : string;
  nparams : int;
  nvars : int;
  slots : int array;
  blocks : block list;
}

type init_item =
  | Word of int
  | Sym_addr of string
  | Sym_addr_off of string * int
  | Str of string

type global = {
  gname : string;
  gsize : int;
  ginit : init_item list;
}

type program = { funcs : func list; globals : global list; main : string }

let find_func p name = List.find_opt (fun f -> f.name = name) p.funcs

let find_global p name = List.find_opt (fun g -> g.gname = name) p.globals

let init_footprint items =
  List.fold_left
    (fun acc item ->
      acc
      + match item with Word _ | Sym_addr _ | Sym_addr_off _ -> 8 | Str s -> String.length s)
    0 items

let program_size p =
  List.fold_left
    (fun acc f ->
      acc + List.fold_left (fun a b -> a + List.length b.body + 1) 0 f.blocks)
    0 p.funcs
