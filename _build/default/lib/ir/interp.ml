module Mem = R2c_machine.Mem
module Heap = R2c_machine.Heap
module Addr = R2c_machine.Addr

type result = {
  output : string;
  exit_code : int;
  sensitive : (int * int) list;
  steps : int;
}

type error =
  | Fuel_exhausted
  | Runtime_error of string

let error_to_string = function
  | Fuel_exhausted -> "fuel exhausted"
  | Runtime_error m -> "runtime error: " ^ m

exception Error of error
exception Program_exit of int

let fail fmt = Printf.ksprintf (fun m -> raise (Error (Runtime_error m))) fmt

type state = {
  program : Ir.program;
  mem : Mem.t;
  heap : Heap.t;
  global_addr : (string, int) Hashtbl.t;
  func_addr : (string, int) Hashtbl.t;
  addr_func : (int, Ir.func) Hashtbl.t;
  addr_builtin : (int, string) Hashtbl.t;
  builtin_addr : (string, int) Hashtbl.t;
  out : Buffer.t;
  input : string Queue.t;
  mutable sensitive : (int * int) list;
  mutable sp : int;  (* bump pointer for stack slots, grows down *)
  mutable fuel : int;
  mutable steps : int;
  mutable depth : int;  (* active call depth, for the backtrace builtin *)
}

let layout (p : Ir.program) =
  let mem = Mem.create () in
  let global_addr = Hashtbl.create 64 in
  let func_addr = Hashtbl.create 64 in
  let addr_func = Hashtbl.create 64 in
  let addr_builtin = Hashtbl.create 16 in
  let builtin_addr = Hashtbl.create 16 in
  (* Globals: packed sequentially in the data region. *)
  let data_len =
    List.fold_left
      (fun off (g : Ir.global) ->
        Hashtbl.replace global_addr g.gname (Addr.data_base + off);
        off + Addr.align_up g.gsize ~align:16)
      0 p.globals
  in
  Mem.map mem Addr.data_base
    (Addr.align_up (max data_len Addr.page_size) ~align:Addr.page_size)
    R2c_machine.Perm.rw;
  (* Function and builtin "addresses": distinct values in the text range so
     that function pointers stored in memory round-trip. *)
  List.iteri
    (fun i name ->
      let a = Addr.text_base + (16 * i) in
      Hashtbl.replace addr_builtin a name;
      Hashtbl.replace builtin_addr name a)
    R2c_machine.Image.builtin_names;
  List.iteri
    (fun i (f : Ir.func) ->
      let a = Addr.text_base + 4096 + (64 * i) in
      Hashtbl.replace func_addr f.name a;
      Hashtbl.replace addr_func a f)
    p.funcs;
  (* Stack for slots. *)
  let stack_len = 4 * 1024 * 1024 in
  Mem.map mem (Addr.stack_top - stack_len) stack_len R2c_machine.Perm.rw;
  let st =
    {
      program = p;
      mem;
      heap = Heap.create mem ~base:Addr.heap_base;
      global_addr;
      func_addr;
      addr_func;
      addr_builtin;
      builtin_addr;
      out = Buffer.create 256;
      input = Queue.create ();
      sensitive = [];
      sp = Addr.stack_top - 64;
      fuel = 0;
      steps = 0;
      depth = 0;
    }
  in
  (* Apply global initialisers (symbols now resolvable). *)
  let sym_addr s =
    match Hashtbl.find_opt global_addr s with
    | Some a -> a
    | None -> (
        match Hashtbl.find_opt func_addr s with
        | Some a -> a
        | None -> fail "unknown symbol %s in initialiser" s)
  in
  List.iter
    (fun (g : Ir.global) ->
      let base = Hashtbl.find global_addr g.gname in
      let _ =
        List.fold_left
          (fun off item ->
            match item with
            | Ir.Word v ->
                Mem.write_u64 mem (base + off) v;
                off + 8
            | Ir.Sym_addr s ->
                Mem.write_u64 mem (base + off) (sym_addr s);
                off + 8
            | Ir.Sym_addr_off (s, o) ->
                Mem.write_u64 mem (base + off) (sym_addr s + o);
                off + 8
            | Ir.Str s ->
                Mem.write_bytes mem (base + off) (Bytes.of_string s);
                off + String.length s)
          0 g.ginit
      in
      ())
    p.globals;
  st

let read_cstring st addr =
  let buf = Buffer.create 16 in
  let rec go a =
    if Buffer.length buf > 4096 then Buffer.contents buf
    else
      let c = Mem.read_u8 st.mem a in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (a + 1)
      end
  in
  go addr

let builtin st name args =
  let arg i = try List.nth args i with Failure _ -> 0 in
  match name with
  | "malloc" -> Heap.malloc st.heap (arg 0)
  | "malloc_pages" -> Heap.malloc_pages st.heap (arg 0)
  | "free" ->
      Heap.free st.heap (arg 0);
      0
  | "mprotect_noread" -> 0 (* the reference semantics has no permissions *)
  | "print_int" ->
      Buffer.add_string st.out (string_of_int (arg 0));
      Buffer.add_char st.out '\n';
      0
  | "print_str" ->
      Buffer.add_string st.out (read_cstring st (arg 0));
      Buffer.add_char st.out '\n';
      0
  | "read_input" ->
      if Queue.is_empty st.input then 0
      else begin
        let s = Queue.pop st.input in
        let n = min (String.length s) (arg 1) in
        for i = 0 to n - 1 do
          Mem.write_u8 st.mem (arg 0 + i) (Char.code s.[i])
        done;
        n
      end
  | "sensitive" ->
      st.sensitive <- (arg 0, arg 1) :: st.sensitive;
      0
  | "backtrace" -> st.depth
  | "exit" -> raise (Program_exit (arg 0))
  | other -> fail "unknown builtin %s" other

let eval_binop (op : Ir.binop) a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then fail "division by zero" else a / b
  | Rem -> if b = 0 then fail "division by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)
  | Sar -> a asr (b land 63)

let eval_cmp (c : Ir.cmp) a b =
  let r =
    match c with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

(* One call frame: evaluates a function body; returns the result value. *)
let rec exec_func st (f : Ir.func) args =
  st.depth <- st.depth + 1;
  let env = Array.make (max f.nvars 1) 0 in
  List.iteri (fun i v -> if i < f.nparams then env.(i) <- v) args;
  (* Allocate slots downward; release on exit. *)
  let saved_sp = st.sp in
  let slot_addrs =
    Array.map
      (fun size ->
        st.sp <- st.sp - Addr.align_up size ~align:8;
        st.sp)
      f.slots
  in
  if st.sp < Addr.stack_top - (4 * 1024 * 1024) + 4096 then fail "stack overflow";
  let block_tbl = Hashtbl.create 8 in
  List.iter (fun (b : Ir.block) -> Hashtbl.replace block_tbl b.lbl b) f.blocks;
  let eval = function
    | Ir.Const n -> n
    | Ir.Var v -> env.(v)
    | Ir.Global g -> (
        match Hashtbl.find_opt st.global_addr g with
        | Some a -> a
        | None -> fail "unknown global %s" g)
    | Ir.Func fn -> (
        match Hashtbl.find_opt st.func_addr fn with
        | Some a -> a
        | None -> (
            match Hashtbl.find_opt st.builtin_addr fn with
            | Some a -> a
            | None -> fail "unknown function %s" fn))
  in
  let call_value callee args =
    match callee with
    | Ir.Direct name -> (
        match Ir.find_func st.program name with
        | Some g -> exec_func st g args
        | None -> fail "call to unknown function %s" name)
    | Ir.Builtin name -> builtin st name args
    | Ir.Indirect op -> (
        let a = eval op in
        match Hashtbl.find_opt st.addr_func a with
        | Some g -> exec_func st g args
        | None -> (
            match Hashtbl.find_opt st.addr_builtin a with
            | Some name -> builtin st name args
            | None -> fail "indirect call to non-function 0x%x" a))
  in
  let step_instr = function
    | Ir.Mov (v, op) -> env.(v) <- eval op
    | Ir.Binop (v, op, a, b) -> env.(v) <- eval_binop op (eval a) (eval b)
    | Ir.Cmp (v, c, a, b) -> env.(v) <- eval_cmp c (eval a) (eval b)
    | Ir.Load (v, base, off) -> env.(v) <- Mem.read_u64 st.mem (eval base + off)
    | Ir.Load8 (v, base, off) -> env.(v) <- Mem.read_u8 st.mem (eval base + off)
    | Ir.Store (base, off, value) -> Mem.write_u64 st.mem (eval base + off) (eval value)
    | Ir.Store8 (base, off, value) -> Mem.write_u8 st.mem (eval base + off) (eval value)
    | Ir.Slot_addr (v, i) -> env.(v) <- slot_addrs.(i)
    | Ir.Call (dst, callee, args) ->
        let v = call_value callee (List.map eval args) in
        (match dst with Some d -> env.(d) <- v | None -> ())
  in
  let consume () =
    st.steps <- st.steps + 1;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise (Error Fuel_exhausted)
  in
  let rec run_block (b : Ir.block) =
    List.iter
      (fun i ->
        consume ();
        step_instr i)
      b.body;
    consume ();
    match b.term with
    | Ir.Ret None -> 0
    | Ir.Ret (Some op) -> eval op
    | Ir.Br l -> goto l
    | Ir.Cond_br (c, l1, l2) -> if eval c <> 0 then goto l1 else goto l2
  and goto l =
    match Hashtbl.find_opt block_tbl l with
    | Some b -> run_block b
    | None -> fail "branch to unknown label %d in %s" l f.name
  in
  let result =
    match f.blocks with
    | entry :: _ -> run_block entry
    | [] -> fail "function %s has no blocks" f.name
  in
  st.sp <- saved_sp;
  st.depth <- st.depth - 1;
  result

let run ?(fuel = 50_000_000) ?(input = []) (p : Ir.program) =
  try
    let st = layout p in
    st.fuel <- fuel;
    List.iter (fun s -> Queue.push s st.input) input;
    let exit_code =
      match Ir.find_func p p.main with
      | None -> fail "main function %s not found" p.main
      | Some f -> ( try exec_func st f [] with Program_exit c -> c)
    in
    Ok
      {
        output = Buffer.contents st.out;
        exit_code;
        sensitive = List.rev st.sensitive;
        steps = st.steps;
      }
  with
  | Error e -> Result.Error e
  | R2c_machine.Fault.Fault f ->
      Result.Error (Runtime_error (R2c_machine.Fault.to_string f))
