(** Imperative construction of IR functions and programs.

    A function builder keeps a current block; emitters append to it and
    return the destination as an operand, so straight-line code reads
    naturally:

    {[
      let fb = Builder.func "square" ~nparams:1 in
      let x = Builder.param 0 in
      let r = Builder.binop fb Mul x x in
      Builder.ret fb (Some r);
      let f = Builder.finish fb
    ]} *)

type t

(** [func name ~nparams] — fresh builder positioned in the entry block. *)
val func : string -> nparams:int -> t

(** [param i] — operand for the [i]-th parameter. *)
val param : int -> Ir.operand

(** [fresh t] — a new virtual register. *)
val fresh : t -> Ir.var

(** [slot t size] — declare a local stack slot, returning its index. *)
val slot : t -> int -> int

(** [new_block t] — allocate a label without switching to it. *)
val new_block : t -> Ir.label

(** [switch_to t lbl] — subsequent emissions go to block [lbl]. The current
    block must already be terminated or empty-switched. *)
val switch_to : t -> Ir.label -> unit

val mov : t -> Ir.operand -> Ir.operand
val binop : t -> Ir.binop -> Ir.operand -> Ir.operand -> Ir.operand
val cmp : t -> Ir.cmp -> Ir.operand -> Ir.operand -> Ir.operand
val load : t -> Ir.operand -> int -> Ir.operand
val load8 : t -> Ir.operand -> int -> Ir.operand
val store : t -> Ir.operand -> int -> Ir.operand -> unit
val store8 : t -> Ir.operand -> int -> Ir.operand -> unit
val slot_addr : t -> int -> Ir.operand

(** [call t callee args] — call with a result. *)
val call : t -> Ir.callee -> Ir.operand list -> Ir.operand

(** [call_void t callee args] — call ignoring the result. *)
val call_void : t -> Ir.callee -> Ir.operand list -> unit

val ret : t -> Ir.operand option -> unit
val br : t -> Ir.label -> unit
val cond_br : t -> Ir.operand -> Ir.label -> Ir.label -> unit

(** [finish t] — assemble the function; every reached block must be
    terminated. *)
val finish : t -> Ir.func

(** Program assembly. *)

val global : string -> size:int -> Ir.init_item list -> Ir.global

(** [program ~main funcs globals] *)
val program : main:string -> Ir.func list -> Ir.global list -> Ir.program
