type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let string_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c >= 32 && Char.code c < 127 -> Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "\\%02x" (Char.code c)))
    s;
  Buffer.contents buf

let operand_to_string = function
  | Ir.Const n -> string_of_int n
  | Ir.Var v -> Printf.sprintf "v%d" v
  | Ir.Global g -> "@" ^ g
  | Ir.Func f -> "&" ^ f

let binop_to_string = function
  | Ir.Add -> "add" | Ir.Sub -> "sub" | Ir.Mul -> "mul" | Ir.Div -> "div"
  | Ir.Rem -> "rem" | Ir.And -> "and" | Ir.Or -> "or" | Ir.Xor -> "xor"
  | Ir.Shl -> "shl" | Ir.Shr -> "shr" | Ir.Sar -> "sar"

let cmp_to_string = function
  | Ir.Eq -> "eq" | Ir.Ne -> "ne" | Ir.Lt -> "lt"
  | Ir.Le -> "le" | Ir.Gt -> "gt" | Ir.Ge -> "ge"

let args_to_string args = String.concat ", " (List.map operand_to_string args)

let instr_to_string = function
  | Ir.Mov (v, op) -> Printf.sprintf "v%d = mov %s" v (operand_to_string op)
  | Ir.Binop (v, op, a, b) ->
      Printf.sprintf "v%d = %s %s, %s" v (binop_to_string op) (operand_to_string a)
        (operand_to_string b)
  | Ir.Cmp (v, c, a, b) ->
      Printf.sprintf "v%d = cmp.%s %s, %s" v (cmp_to_string c) (operand_to_string a)
        (operand_to_string b)
  | Ir.Load (v, base, off) ->
      Printf.sprintf "v%d = load [%s + %d]" v (operand_to_string base) off
  | Ir.Load8 (v, base, off) ->
      Printf.sprintf "v%d = load8 [%s + %d]" v (operand_to_string base) off
  | Ir.Store (base, off, value) ->
      Printf.sprintf "store [%s + %d], %s" (operand_to_string base) off
        (operand_to_string value)
  | Ir.Store8 (base, off, value) ->
      Printf.sprintf "store8 [%s + %d], %s" (operand_to_string base) off
        (operand_to_string value)
  | Ir.Slot_addr (v, i) -> Printf.sprintf "v%d = slot %d" v i
  | Ir.Call (dst, callee, args) -> (
      let prefix = match dst with Some v -> Printf.sprintf "v%d = " v | None -> "" in
      match callee with
      | Ir.Direct f -> Printf.sprintf "%scall %s(%s)" prefix f (args_to_string args)
      | Ir.Builtin b -> Printf.sprintf "%scall !%s(%s)" prefix b (args_to_string args)
      | Ir.Indirect op ->
          Printf.sprintf "%scalli %s(%s)" prefix (operand_to_string op)
            (args_to_string args))

let term_to_string = function
  | Ir.Ret None -> "ret"
  | Ir.Ret (Some op) -> "ret " ^ operand_to_string op
  | Ir.Br l -> Printf.sprintf "br L%d" l
  | Ir.Cond_br (c, l1, l2) ->
      Printf.sprintf "cbr %s, L%d, L%d" (operand_to_string c) l1 l2

let to_string (p : Ir.program) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (g : Ir.global) ->
      let item = function
        | Ir.Word n -> Printf.sprintf "word %d" n
        | Ir.Sym_addr s -> Printf.sprintf "addr %s" s
        | Ir.Sym_addr_off (s, o) -> Printf.sprintf "addr %s + %d" s o
        | Ir.Str s -> Printf.sprintf "str \"%s\"" (string_escape s)
      in
      if g.ginit = [] then
        Buffer.add_string buf (Printf.sprintf "global %s : %d\n" g.gname g.gsize)
      else
        Buffer.add_string buf
          (Printf.sprintf "global %s : %d = %s\n" g.gname g.gsize
             (String.concat ", " (List.map item g.ginit))))
    p.globals;
  List.iter
    (fun (f : Ir.func) ->
      let params = String.concat ", " (List.init f.nparams (fun i -> Printf.sprintf "v%d" i)) in
      Buffer.add_string buf (Printf.sprintf "\nfunc %s(%s) {\n" f.name params);
      if Array.length f.slots > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  slots %s\n"
             (String.concat ", " (Array.to_list (Array.map string_of_int f.slots))));
      List.iter
        (fun (b : Ir.block) ->
          Buffer.add_string buf (Printf.sprintf "L%d:\n" b.lbl);
          List.iter
            (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n"))
            b.body;
          Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n"))
        f.blocks;
      Buffer.add_string buf "}\n")
    p.funcs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of error

let fail line fmt = Printf.ksprintf (fun m -> raise (Parse_error { line; message = m })) fmt

(* Tokenizer: identifiers, integers, strings, punctuation. *)
type token =
  | Ident of string
  | Int of int
  | Str_lit of string
  | Punct of char  (* ( ) { } [ ] , = : + @ & ! *)

let tokenize line_no s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = ';' || c = '#' then i := n (* comment *)
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while
        !i < n
        &&
        let c = s.[!i] in
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = '.'
      do
        incr i
      done;
      toks := Ident (String.sub s start (!i - start)) :: !toks
    end
    else if (c >= '0' && c <= '9') || (c = '-' && (match peek () with Some _ -> true | None -> false))
    then begin
      let start = !i in
      if c = '-' then incr i;
      if !i + 1 < n && s.[!i] = '0' && (s.[!i + 1] = 'x' || s.[!i + 1] = 'X') then i := !i + 2;
      while
        !i < n
        &&
        let c = s.[!i] in
        (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
      do
        incr i
      done;
      let lit = String.sub s start (!i - start) in
      match int_of_string_opt lit with
      | Some v -> toks := Int v :: !toks
      | None -> fail line_no "bad integer literal %s" lit
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let rec go () =
        if !i >= n then fail line_no "unterminated string"
        else
          match s.[!i] with
          | '"' -> incr i
          | '\\' ->
              if !i + 1 >= n then fail line_no "dangling escape";
              (match s.[!i + 1] with
              | '"' ->
                  Buffer.add_char buf '"';
                  i := !i + 2
              | '\\' ->
                  Buffer.add_char buf '\\';
                  i := !i + 2
              | _ ->
                  if !i + 2 >= n then fail line_no "bad escape";
                  let hex = String.sub s (!i + 1) 2 in
                  (match int_of_string_opt ("0x" ^ hex) with
                  | Some v -> Buffer.add_char buf (Char.chr v)
                  | None -> fail line_no "bad escape \\%s" hex);
                  i := !i + 3);
              go ()
          | c ->
              Buffer.add_char buf c;
              incr i;
              go ()
      in
      go ();
      toks := Str_lit (Buffer.contents buf) :: !toks
    end
    else if String.contains "(){}[],=:+@&!" c then begin
      toks := Punct c :: !toks;
      incr i
    end
    else fail line_no "unexpected character %C" c
  done;
  List.rev !toks

(* Token-stream helpers over one line. *)
type cursor = { mutable toks : token list; line : int }

let next cur =
  match cur.toks with
  | [] -> fail cur.line "unexpected end of line"
  | t :: rest ->
      cur.toks <- rest;
      t

let peek_tok cur = match cur.toks with [] -> None | t :: _ -> Some t

let expect_punct cur c =
  match next cur with
  | Punct p when p = c -> ()
  | _ -> fail cur.line "expected %C" c

let expect_ident cur =
  match next cur with Ident s -> s | _ -> fail cur.line "expected identifier"

let expect_int cur = match next cur with Int v -> v | _ -> fail cur.line "expected integer"

let expect_end cur =
  match cur.toks with [] -> () | _ -> fail cur.line "trailing tokens"

let var_of_ident cur s =
  if String.length s >= 2 && s.[0] = 'v' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v when v >= 0 -> v
    | Some _ | None -> fail cur.line "bad register %s" s
  else fail cur.line "expected register, got %s" s

let label_of_ident cur s =
  if String.length s >= 2 && s.[0] = 'L' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some l -> l
    | None -> fail cur.line "bad label %s" s
  else fail cur.line "expected label, got %s" s

let parse_operand cur =
  match next cur with
  | Int v -> Ir.Const v
  | Punct '@' -> Ir.Global (expect_ident cur)
  | Punct '&' -> Ir.Func (expect_ident cur)
  | Ident s -> Ir.Var (var_of_ident cur s)
  | _ -> fail cur.line "expected operand"

let parse_mem cur =
  expect_punct cur '[';
  let base = parse_operand cur in
  let off =
    match peek_tok cur with
    | Some (Punct '+') ->
        expect_punct cur '+';
        expect_int cur
    | Some (Int v) when v < 0 ->
        (* allow "[v0 -8]" shorthand via a negative literal *)
        ignore (next cur);
        v
    | _ -> 0
  in
  expect_punct cur ']';
  (base, off)

let parse_args cur =
  expect_punct cur '(';
  let rec go acc =
    match peek_tok cur with
    | Some (Punct ')') ->
        expect_punct cur ')';
        List.rev acc
    | _ -> (
        let op = parse_operand cur in
        match peek_tok cur with
        | Some (Punct ',') ->
            expect_punct cur ',';
            go (op :: acc)
        | _ ->
            expect_punct cur ')';
            List.rev (op :: acc))
  in
  go []

let parse_call cur dst kw =
  match kw with
  | "call" -> (
      match next cur with
      | Punct '!' ->
          let b = expect_ident cur in
          Ir.Call (dst, Ir.Builtin b, parse_args cur)
      | Ident f -> Ir.Call (dst, Ir.Direct f, parse_args cur)
      | _ -> fail cur.line "expected callee")
  | "calli" ->
      let target = parse_operand cur in
      Ir.Call (dst, Ir.Indirect target, parse_args cur)
  | _ -> fail cur.line "expected call or calli"

let binop_of_string = function
  | "add" -> Some Ir.Add | "sub" -> Some Ir.Sub | "mul" -> Some Ir.Mul
  | "div" -> Some Ir.Div | "rem" -> Some Ir.Rem | "and" -> Some Ir.And
  | "or" -> Some Ir.Or | "xor" -> Some Ir.Xor | "shl" -> Some Ir.Shl
  | "shr" -> Some Ir.Shr | "sar" -> Some Ir.Sar | _ -> None

let cmp_of_string = function
  | "eq" -> Some Ir.Eq | "ne" -> Some Ir.Ne | "lt" -> Some Ir.Lt
  | "le" -> Some Ir.Le | "gt" -> Some Ir.Gt | "ge" -> Some Ir.Ge
  | _ -> None

(* One body line: an instruction or a terminator. *)
type body_line =
  | Instr of Ir.instr
  | Term of Ir.term

let parse_body_line cur =
  match next cur with
  | Ident "ret" ->
      if cur.toks = [] then Term (Ir.Ret None) else Term (Ir.Ret (Some (parse_operand cur)))
  | Ident "br" -> Term (Ir.Br (label_of_ident cur (expect_ident cur)))
  | Ident "cbr" ->
      let c = parse_operand cur in
      expect_punct cur ',';
      let l1 = label_of_ident cur (expect_ident cur) in
      expect_punct cur ',';
      let l2 = label_of_ident cur (expect_ident cur) in
      Term (Ir.Cond_br (c, l1, l2))
  | Ident "store" | Ident "store8" as t ->
      let base, off = parse_mem cur in
      expect_punct cur ',';
      let value = parse_operand cur in
      if t = Ident "store" then Instr (Ir.Store (base, off, value))
      else Instr (Ir.Store8 (base, off, value))
  | Ident ("call" | "calli" as kw) -> Instr (parse_call cur None kw)
  | Ident s ->
      (* v<N> = <rhs> *)
      let v = var_of_ident cur s in
      expect_punct cur '=';
      let rhs = expect_ident cur in
      if rhs = "mov" then Instr (Ir.Mov (v, parse_operand cur))
      else if rhs = "slot" then Instr (Ir.Slot_addr (v, expect_int cur))
      else if rhs = "load" || rhs = "load8" then begin
        let base, off = parse_mem cur in
        if rhs = "load" then Instr (Ir.Load (v, base, off)) else Instr (Ir.Load8 (v, base, off))
      end
      else if rhs = "call" || rhs = "calli" then Instr (parse_call cur (Some v) rhs)
      else if String.length rhs > 4 && String.sub rhs 0 4 = "cmp." then begin
        match cmp_of_string (String.sub rhs 4 (String.length rhs - 4)) with
        | Some c ->
            let a = parse_operand cur in
            expect_punct cur ',';
            let b = parse_operand cur in
            Instr (Ir.Cmp (v, c, a, b))
        | None -> fail cur.line "unknown comparison %s" rhs
      end
      else begin
        match binop_of_string rhs with
        | Some op ->
            let a = parse_operand cur in
            expect_punct cur ',';
            let b = parse_operand cur in
            Instr (Ir.Binop (v, op, a, b))
        | None -> fail cur.line "unknown operation %s" rhs
      end
  | _ -> fail cur.line "expected instruction"

let parse_global cur =
  let gname = expect_ident cur in
  expect_punct cur ':';
  let gsize = expect_int cur in
  let ginit =
    match peek_tok cur with
    | None -> []
    | Some (Punct '=') ->
        expect_punct cur '=';
        let rec items acc =
          let item =
            match next cur with
            | Ident "word" -> Ir.Word (expect_int cur)
            | Ident "addr" -> (
                let s = expect_ident cur in
                match peek_tok cur with
                | Some (Punct '+') ->
                    expect_punct cur '+';
                    Ir.Sym_addr_off (s, expect_int cur)
                | _ -> Ir.Sym_addr s)
            | Ident "str" -> (
                match next cur with
                | Str_lit s -> Ir.Str s
                | _ -> fail cur.line "expected string literal")
            | _ -> fail cur.line "expected word/addr/str"
          in
          match peek_tok cur with
          | Some (Punct ',') ->
              expect_punct cur ',';
              items (item :: acc)
          | _ -> List.rev (item :: acc)
        in
        items []
    | Some _ -> fail cur.line "expected '=' or end of line"
  in
  expect_end cur;
  { Ir.gname; gsize; ginit }

(* Function parsing is stateful across lines. *)
type fstate = {
  fname : string;
  nparams : int;
  mutable slots : int list;
  mutable blocks_rev : (int * Ir.instr list * Ir.term) list;
  mutable cur_label : int option;
  mutable cur_body_rev : Ir.instr list;
  mutable max_var : int;
}

let operand_max_var = function Ir.Var v -> v | Ir.Const _ | Ir.Global _ | Ir.Func _ -> -1

let instr_max_var = function
  | Ir.Mov (v, op) -> max v (operand_max_var op)
  | Ir.Binop (v, _, a, b) | Ir.Cmp (v, _, a, b) ->
      max v (max (operand_max_var a) (operand_max_var b))
  | Ir.Load (v, base, _) | Ir.Load8 (v, base, _) -> max v (operand_max_var base)
  | Ir.Store (base, _, value) | Ir.Store8 (base, _, value) ->
      max (operand_max_var base) (operand_max_var value)
  | Ir.Slot_addr (v, _) -> v
  | Ir.Call (dst, callee, args) ->
      let d = match dst with Some v -> v | None -> -1 in
      let c = match callee with Ir.Indirect op -> operand_max_var op | _ -> -1 in
      List.fold_left (fun acc a -> max acc (operand_max_var a)) (max d c) args

let term_max_var = function
  | Ir.Ret (Some op) | Ir.Cond_br (op, _, _) -> operand_max_var op
  | Ir.Ret None | Ir.Br _ -> -1

let close_block line fs term =
  match fs.cur_label with
  | None -> fail line "terminator outside a block in %s" fs.fname
  | Some lbl ->
      fs.blocks_rev <- (lbl, List.rev fs.cur_body_rev, term) :: fs.blocks_rev;
      fs.cur_label <- None;
      fs.cur_body_rev <- []

let finish_func line fs =
  if fs.cur_label <> None then fail line "unterminated block in %s" fs.fname;
  let blocks =
    List.rev_map (fun (lbl, body, term) -> { Ir.lbl; body; term }) fs.blocks_rev
  in
  if blocks = [] then fail line "function %s has no blocks" fs.fname;
  {
    Ir.name = fs.fname;
    nparams = fs.nparams;
    nvars = fs.max_var + 1;
    slots = Array.of_list fs.slots;
    blocks;
  }

let parse text =
  let lines = String.split_on_char '\n' text in
  let globals = ref [] in
  let funcs = ref [] in
  let state = ref None in
  try
    List.iteri
      (fun idx raw ->
        let line = idx + 1 in
        let toks = tokenize line raw in
        if toks = [] then ()
        else
          let cur = { toks; line } in
          match (!state, peek_tok cur) with
          | None, Some (Ident "global") ->
              ignore (next cur);
              globals := parse_global cur :: !globals
          | None, Some (Ident "func") ->
              ignore (next cur);
              let fname = expect_ident cur in
              expect_punct cur '(';
              let rec params n =
                match peek_tok cur with
                | Some (Punct ')') ->
                    expect_punct cur ')';
                    n
                | _ -> (
                    let s = expect_ident cur in
                    let v = var_of_ident cur s in
                    if v <> n then fail line "parameters must be v0, v1, ... in order";
                    match peek_tok cur with
                    | Some (Punct ',') ->
                        expect_punct cur ',';
                        params (n + 1)
                    | _ ->
                        expect_punct cur ')';
                        n + 1)
              in
              let nparams = params 0 in
              expect_punct cur '{';
              expect_end cur;
              state :=
                Some
                  {
                    fname;
                    nparams;
                    slots = [];
                    blocks_rev = [];
                    cur_label = None;
                    cur_body_rev = [];
                    max_var = nparams - 1;
                  }
          | None, _ -> fail line "expected 'global' or 'func'"
          | Some fs, Some (Punct '}') ->
              ignore (next cur);
              expect_end cur;
              funcs := finish_func line fs :: !funcs;
              state := None
          | Some fs, Some (Ident "slots") ->
              ignore (next cur);
              let rec sizes acc =
                let v = expect_int cur in
                match peek_tok cur with
                | Some (Punct ',') ->
                    expect_punct cur ',';
                    sizes (v :: acc)
                | _ -> List.rev (v :: acc)
              in
              fs.slots <- sizes [];
              expect_end cur
          | Some fs, Some (Ident s)
            when String.length s >= 2 && s.[0] = 'L'
                 && cur.toks <> []
                 && (match cur.toks with
                    | Ident _ :: Punct ':' :: _ -> true
                    | _ -> false) ->
              ignore (next cur);
              expect_punct cur ':';
              expect_end cur;
              if fs.cur_label <> None then
                fail line "label inside an unterminated block";
              fs.cur_label <- Some (label_of_ident cur s)
          | Some fs, Some _ -> (
              if fs.cur_label = None then fail line "instruction outside a block";
              match parse_body_line cur with
              | Instr i ->
                  expect_end cur;
                  fs.max_var <- max fs.max_var (instr_max_var i);
                  fs.cur_body_rev <- i :: fs.cur_body_rev
              | Term t ->
                  expect_end cur;
                  fs.max_var <- max fs.max_var (term_max_var t);
                  close_block line fs t)
          | _, None -> ())
      lines;
    (match !state with
    | Some fs -> fail (List.length lines) "unterminated function %s" fs.fname
    | None -> ());
    Ok { Ir.funcs = List.rev !funcs; globals = List.rev !globals; main = "main" }
  with Parse_error e -> Error e
