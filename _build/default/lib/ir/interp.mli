(** Reference interpreter.

    Executes an IR program directly — no compilation, no diversification,
    its own trivial memory layout — producing the observable behaviour
    (printed output, exit code, sensitive-call log). The compiler test
    suite runs every workload through both this interpreter and the full
    compile-and-simulate pipeline and requires identical observables; this
    is the analogue of the paper's browser-test-suite validation
    (Section 6.3). Programs whose output depends on absolute addresses are
    outside the differential contract. *)

type result = {
  output : string;
  exit_code : int;
  sensitive : (int * int) list;
  steps : int;
}

type error =
  | Fuel_exhausted
  | Runtime_error of string

val error_to_string : error -> string

(** [run ?fuel ?input p] — interpret from [main]. [input] feeds
    [read_input]. Default fuel: 50M IR steps. *)
val run : ?fuel:int -> ?input:string list -> Ir.program -> (result, error) Result.t
