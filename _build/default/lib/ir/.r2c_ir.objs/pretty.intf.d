lib/ir/pretty.mli: Ir
