lib/ir/validate.ml: Array Hashtbl Ir List Option Printf R2c_machine
