lib/ir/ir.mli:
