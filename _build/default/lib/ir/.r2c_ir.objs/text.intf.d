lib/ir/text.mli: Ir
