lib/ir/text.ml: Array Buffer Char Ir List Printf String
