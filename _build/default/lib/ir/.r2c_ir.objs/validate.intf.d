lib/ir/validate.mli: Ir
