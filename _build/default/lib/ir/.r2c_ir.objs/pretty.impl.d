lib/ir/pretty.ml: Array Buffer Ir List Printf String
