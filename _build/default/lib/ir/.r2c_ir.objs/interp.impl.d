lib/ir/interp.ml: Array Buffer Bytes Char Hashtbl Ir List Printf Queue R2c_machine Result String
