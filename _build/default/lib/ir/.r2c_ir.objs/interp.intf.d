lib/ir/interp.mli: Ir Result
