type assignment =
  | In_reg of R2c_machine.Insn.reg
  | Spilled of int

type result = {
  assign : assignment array;
  nspills : int;
  used_regs : R2c_machine.Insn.reg list;
}

let operand_vars = function
  | Ir.Var v -> [ v ]
  | Ir.Const _ | Ir.Global _ | Ir.Func _ -> []

let instr_uses = function
  | Ir.Mov (_, op) -> operand_vars op
  | Ir.Binop (_, _, a, b) | Ir.Cmp (_, _, a, b) -> operand_vars a @ operand_vars b
  | Ir.Load (_, base, _) | Ir.Load8 (_, base, _) -> operand_vars base
  | Ir.Store (base, _, value) | Ir.Store8 (base, _, value) ->
      operand_vars base @ operand_vars value
  | Ir.Slot_addr (_, _) -> []
  | Ir.Call (_, callee, args) ->
      (match callee with
      | Ir.Indirect op -> operand_vars op
      | Ir.Direct _ | Ir.Builtin _ -> [])
      @ List.concat_map operand_vars args

let instr_defs = function
  | Ir.Mov (v, _)
  | Ir.Binop (v, _, _, _)
  | Ir.Cmp (v, _, _, _)
  | Ir.Load (v, _, _)
  | Ir.Load8 (v, _, _)
  | Ir.Slot_addr (v, _) -> [ v ]
  | Ir.Store _ | Ir.Store8 _ -> []
  | Ir.Call (dst, _, _) -> Option.to_list dst

let term_uses = function
  | Ir.Ret None -> []
  | Ir.Ret (Some op) -> operand_vars op
  | Ir.Br _ -> []
  | Ir.Cond_br (c, _, _) -> operand_vars c

let term_succs = function
  | Ir.Ret _ -> []
  | Ir.Br l -> [ l ]
  | Ir.Cond_br (_, l1, l2) -> [ l1; l2 ]

module IntSet = Set.Make (Int)

(* Conservative live intervals over a linear numbering of instructions:
   a variable's interval covers every position where it is mentioned plus
   the full extent of every block at whose boundary it is live. This over-
   approximates around loops, which is all linear scan needs for
   correctness. *)
let intervals (f : Ir.func) =
  let nblocks = List.length f.blocks in
  let blocks = Array.of_list f.blocks in
  let index_of_label = Hashtbl.create 8 in
  Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace index_of_label b.lbl i) blocks;
  (* Position ranges per block. *)
  let starts = Array.make nblocks 0 in
  let stops = Array.make nblocks 0 in
  let pos = ref 0 in
  Array.iteri
    (fun i (b : Ir.block) ->
      starts.(i) <- !pos;
      pos := !pos + List.length b.body + 1;
      stops.(i) <- !pos - 1)
    blocks;
  (* use/def per block. *)
  let gen = Array.make nblocks IntSet.empty in
  let kill = Array.make nblocks IntSet.empty in
  Array.iteri
    (fun i (b : Ir.block) ->
      (* Backward within the block: use before def exposes the use. *)
      let g = ref (IntSet.of_list (term_uses b.term)) in
      let k = ref IntSet.empty in
      List.iter
        (fun instr ->
          let defs = instr_defs instr in
          List.iter (fun v -> g := IntSet.remove v !g) defs;
          List.iter (fun v -> k := IntSet.add v !k) defs;
          List.iter (fun v -> g := IntSet.add v !g) (instr_uses instr))
        (List.rev b.body);
      gen.(i) <- !g;
      kill.(i) <- !k)
    blocks;
  let live_in = Array.make nblocks IntSet.empty in
  let live_out = Array.make nblocks IntSet.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = nblocks - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc l ->
            match Hashtbl.find_opt index_of_label l with
            | Some j -> IntSet.union acc live_in.(j)
            | None -> acc)
          IntSet.empty
          (term_succs blocks.(i).term)
      in
      let inn = IntSet.union gen.(i) (IntSet.diff out kill.(i)) in
      if not (IntSet.equal out live_out.(i)) || not (IntSet.equal inn live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inn;
        changed := true
      end
    done
  done;
  let lo = Array.make f.nvars max_int in
  let hi = Array.make f.nvars (-1) in
  let touch v p =
    if p < lo.(v) then lo.(v) <- p;
    if p > hi.(v) then hi.(v) <- p
  in
  (* Parameters are defined at function entry. *)
  for v = 0 to f.nparams - 1 do
    touch v 0
  done;
  Array.iteri
    (fun i (b : Ir.block) ->
      IntSet.iter (fun v -> touch v starts.(i)) live_in.(i);
      IntSet.iter (fun v -> touch v stops.(i)) live_out.(i);
      let p = ref starts.(i) in
      List.iter
        (fun instr ->
          List.iter (fun v -> touch v !p) (instr_uses instr);
          List.iter (fun v -> touch v !p) (instr_defs instr);
          incr p)
        b.body;
      List.iter (fun v -> touch v !p) (term_uses b.term))
    blocks;
  Array.init f.nvars (fun v -> if hi.(v) < 0 then (0, 0) else (lo.(v), hi.(v)))

let allocate ~pool (f : Ir.func) =
  let ivals = intervals f in
  let order = List.init f.nvars (fun v -> v) in
  let order = List.sort (fun a b -> compare (fst ivals.(a)) (fst ivals.(b))) order in
  let assign = Array.make f.nvars (Spilled 0) in
  let free = ref pool in
  let active = ref [] (* (stop, var, reg), sorted by stop *) in
  let used = Hashtbl.create 8 in
  let nspills = ref 0 in
  let expire start =
    let expired, still = List.partition (fun (stop, _, _) -> stop < start) !active in
    List.iter (fun (_, _, r) -> free := r :: !free) expired;
    active := still
  in
  List.iter
    (fun v ->
      let start, stop = ivals.(v) in
      expire start;
      match !free with
      | r :: rest ->
          free := rest;
          assign.(v) <- In_reg r;
          Hashtbl.replace used r ();
          active := List.sort compare ((stop, v, r) :: !active)
      | [] ->
          assign.(v) <- Spilled !nspills;
          incr nspills)
    order;
  let used_regs = List.filter (Hashtbl.mem used) pool in
  { assign; nspills = !nspills; used_regs }
