(** Linear-scan register allocation over IR virtual registers.

    Allocatable registers are callee-saved only, so values survive calls
    without caller-side spills; everything else lives in frame slots. The
    pool's order comes from {!Opts.t.reg_pool} — register-allocation
    randomization (Section 4.3) is a permuted pool. *)

type assignment =
  | In_reg of R2c_machine.Insn.reg
  | Spilled of int  (** index into the function's spill-slot array *)

type result = {
  assign : assignment array;  (** indexed by var *)
  nspills : int;
  used_regs : R2c_machine.Insn.reg list;  (** to be saved/restored *)
}

(** [allocate ~pool f] — assignment for every var of [f]. *)
val allocate : pool:R2c_machine.Insn.reg list -> Ir.func -> result

(** Exposed for tests: live interval of each var as (start, stop) over the
    linearized instruction positions. *)
val intervals : Ir.func -> (int * int) array
