lib/compiler/emit.ml: Addr Array Asm Insn Ir List Opts Printf R2c_machine Regalloc
