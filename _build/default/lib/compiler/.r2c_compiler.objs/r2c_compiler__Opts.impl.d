lib/compiler/opts.ml: Array Ir List R2c_machine
