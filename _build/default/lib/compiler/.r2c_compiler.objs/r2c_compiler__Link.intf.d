lib/compiler/link.mli: Asm Ir Opts R2c_machine
