lib/compiler/link.ml: Addr Array Asm Hashtbl Image Insn Ir List Opts R2c_machine String
