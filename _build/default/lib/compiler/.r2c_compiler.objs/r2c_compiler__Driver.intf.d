lib/compiler/driver.mli: Asm Ir Opts R2c_machine Validate
