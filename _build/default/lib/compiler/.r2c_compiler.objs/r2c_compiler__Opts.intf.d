lib/compiler/opts.mli: Ir R2c_machine
