lib/compiler/driver.ml: Asm Emit Ir Link List Logs Opts R2c_machine Validate
