lib/compiler/asm.ml: Array Buffer List Opts Printf R2c_machine
