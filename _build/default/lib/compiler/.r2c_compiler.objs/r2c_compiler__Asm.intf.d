lib/compiler/asm.mli: Opts R2c_machine
