lib/compiler/regalloc.ml: Array Hashtbl Int Ir List Option R2c_machine Set
