lib/compiler/regalloc.mli: Ir R2c_machine
