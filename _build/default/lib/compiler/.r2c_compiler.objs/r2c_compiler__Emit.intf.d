lib/compiler/emit.mli: Asm Ir Opts R2c_machine
