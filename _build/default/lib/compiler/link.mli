(** Layout and linking.

    Assigns text addresses (builtin PLT entries first, then the synthesized
    [_start], then all functions in the — possibly shuffled — order from
    {!Opts.t.func_order}), lays out globals in the data section in the —
    possibly shuffled and padded — order from {!Opts.t.global_order},
    resolves every symbolic immediate, and produces the {!Image.t} the
    loader maps.

    ASLR is the [*_slide] fields of {!Opts.t}: a fresh link per process,
    exactly like a PIE load. *)

(** [link ~opts ~main emitted globals] — [emitted] must contain [main] and
    every constructor named in [opts]. *)
val link :
  opts:Opts.t -> main:string -> Asm.emitted list -> Ir.global list -> R2c_machine.Image.t
