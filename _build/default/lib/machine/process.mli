(** A running process: image + CPU + crash/restart bookkeeping.

    Restart keeps the same image (and therefore the same randomized layout),
    modelling the worker-respawn behaviour of nginx/Apache/OpenSSH that
    Blind ROP exploits (Section 4, [11]); detection events (booby traps,
    guard pages) are accumulated across restarts — they are what a
    monitoring system would see. *)

type outcome = Exited of int | Crashed of Fault.t | Timeout

type t = {
  image : Image.t;
  profile : Cost.profile;
  fuel : int;
  strict_align : bool;
  mutable cpu : Cpu.t;
  mutable detections : Fault.t list;
  mutable crashes : int;
  mutable restarts : int;
}

(** [start ?profile ?fuel ?strict_align image] loads the image; nothing
    runs yet. Default profile {!Cost.epyc_rome}, default fuel 50M
    instructions, strict alignment off. *)
val start : ?profile:Cost.profile -> ?fuel:int -> ?strict_align:bool -> Image.t -> t

(** [run t] — run to halt/fault/fuel, recording crashes and detections. *)
val run : t -> outcome

(** [run_until t ~break] — run up to an address in [break]; [`Hit] means the
    process is stopped there (e.g. a blocked victim thread whose stack the
    attacker inspects). *)
val run_until : t -> break:int list -> [ `Hit | `Done of outcome ]

(** [restart t] — fresh CPU and memory from the same image. Input queue and
    output start empty; detection history is preserved. *)
val restart : t -> unit

val outcome_to_string : outcome -> string

(** Accessors. *)

val cycles : t -> float

val insns : t -> int
val calls : t -> int

(** [maxrss_bytes t] — peak resident set, the Section 6.2.5 metric. *)
val maxrss_bytes : t -> int

val output : t -> string
val sensitive_log : t -> (int * int) list

(** [detected t] — true if any booby trap or guard page fired so far. *)
val detected : t -> bool
