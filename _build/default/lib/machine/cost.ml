type profile = {
  name : string;
  alu : float;
  mov_rr : float;
  mov_load : float;
  mov_store : float;
  lea : float;
  push : float;
  pop : float;
  div : float;
  setcc : float;
  jmp : float;
  jcc_taken : float;
  jcc_not_taken : float;
  call : float;
  call_ind : float;
  ret : float;
  nop : float;
  trap : float;
  vload : float;
  vstore : float;
  vzeroupper : float;
  halt : float;
  fetch_bytes_per_cycle : float;
  icache_lines : int;
  icache_line_bytes : int;
  icache_miss_penalty : float;
  builtin_alloc : float;
  builtin_mprotect : float;
  builtin_io : float;
}

(* Costs are amortized-throughput estimates for wide out-of-order cores:
   fire-and-forget stores (pushes, vector stores) cost a fraction of a
   cycle because the store buffer absorbs them; dependent loads and
   call/return latencies dominate baselines. *)

(* A recent high-frequency Intel client core: wide fetch, fast caches. *)
let i9_9900k = {
  name = "i9-9900K";
  alu = 0.42; mov_rr = 0.25; mov_load = 0.95; mov_store = 0.5;
  lea = 0.28; push = 0.29; pop = 0.42; div = 23.0; setcc = 0.4;
  jmp = 1.5; jcc_taken = 2.5; jcc_not_taken = 0.45;
  call = 3.7; call_ind = 5.0; ret = 3.0; nop = 0.08; trap = 0.5;
  vload = 0.3; vstore = 0.32; vzeroupper = 0.25; halt = 1.0;
  fetch_bytes_per_cycle = 28.0;
  icache_lines = 512; icache_line_bytes = 64; icache_miss_penalty = 9.0;
  builtin_alloc = 90.0; builtin_mprotect = 320.0; builtin_io = 240.0;
}

(* Server-class Zen 2: slightly slower vector stores, bigger miss cost. *)
let epyc_rome = {
  name = "EPYC Rome";
  alu = 0.42; mov_rr = 0.25; mov_load = 1.0; mov_store = 0.5;
  lea = 0.28; push = 0.3; pop = 0.42; div = 23.0; setcc = 0.4;
  jmp = 1.6; jcc_taken = 2.5; jcc_not_taken = 0.45;
  call = 3.8; call_ind = 5.1; ret = 3.1; nop = 0.09; trap = 0.5;
  vload = 0.3; vstore = 0.33; vzeroupper = 0.25; halt = 1.0;
  fetch_bytes_per_cycle = 26.0;
  icache_lines = 512; icache_line_bytes = 64; icache_miss_penalty = 10.0;
  builtin_alloc = 100.0; builtin_mprotect = 340.0; builtin_io = 260.0;
}

(* Zen 2 HEDT: same core as Rome with client memory parameters. *)
let tr_3970x = {
  name = "TR 3970X";
  alu = 0.42; mov_rr = 0.25; mov_load = 1.0; mov_store = 0.5;
  lea = 0.28; push = 0.3; pop = 0.42; div = 23.0; setcc = 0.4;
  jmp = 1.6; jcc_taken = 2.5; jcc_not_taken = 0.45;
  call = 3.8; call_ind = 5.1; ret = 3.1; nop = 0.09; trap = 0.5;
  vload = 0.3; vstore = 0.33; vzeroupper = 0.25; halt = 1.0;
  fetch_bytes_per_cycle = 26.0;
  icache_lines = 512; icache_line_bytes = 64; icache_miss_penalty = 9.5;
  builtin_alloc = 95.0; builtin_mprotect = 330.0; builtin_io = 250.0;
}

(* Ice Lake server: lower clock, narrower effective fetch under pressure and
   the most expensive front-end misses — the machine with the highest R2C
   overhead in Figure 6 (8.5% geomean, omnetpp at 21%). *)
let xeon_8358 = {
  name = "Xeon 8358";
  alu = 0.42; mov_rr = 0.25; mov_load = 0.92; mov_store = 0.5;
  lea = 0.28; push = 0.36; pop = 0.42; div = 23.0; setcc = 0.4;
  jmp = 1.7; jcc_taken = 2.5; jcc_not_taken = 0.45;
  call = 3.9; call_ind = 5.2; ret = 3.2; nop = 0.12; trap = 0.5;
  vload = 0.3; vstore = 0.31; vzeroupper = 0.25; halt = 1.0;
  fetch_bytes_per_cycle = 22.0;
  icache_lines = 512; icache_line_bytes = 64; icache_miss_penalty = 12.0;
  builtin_alloc = 105.0; builtin_mprotect = 360.0; builtin_io = 280.0;
}

let all_machines = [ i9_9900k; epyc_rome; tr_3970x; xeon_8358 ]

let base_cost p (i : Insn.t) =
  match i with
  | Mov (Reg _, Reg _) | Mov (Reg _, Imm _) -> p.mov_rr
  | Mov (Reg _, Mem _) -> p.mov_load
  | Mov (Mem _, _) -> p.mov_store
  | Mov (Imm _, _) -> p.alu (* rejected by the CPU; cost irrelevant *)
  | Mov8 (Reg _, Mem _) -> p.mov_load
  | Mov8 (Mem _, _) -> p.mov_store
  | Mov8 (_, _) -> p.mov_rr
  | Lea _ -> p.lea
  | Push _ -> p.push
  | Pop _ -> p.pop
  | Binop _ | Neg _ | Cmp _ -> p.alu
  | Div _ | Rem _ -> p.div
  | Setcc _ -> p.setcc
  | Jmp _ | Jmp_ind _ -> p.jmp
  | Jcc _ -> p.jcc_not_taken (* the CPU adds the taken-branch delta *)
  | Call _ -> p.call
  | Call_ind _ -> p.call_ind
  | Ret -> p.ret
  | Nop _ -> p.nop
  | Trap -> p.trap
  | Vload _ -> p.vload
  | Vstore _ -> p.vstore
  | Vload128 _ -> p.vload *. 0.85
  | Vstore128 _ -> p.vstore *. 0.85
  | Vload512 _ -> p.vload *. 1.15
  | Vstore512 _ -> p.vstore *. 1.15
  | Vzeroupper -> p.vzeroupper
  | Halt -> p.halt

let builtin_cost p = function
  | "malloc" | "malloc_pages" | "free" -> p.builtin_alloc
  | "mprotect_noread" -> p.builtin_mprotect
  | _ -> p.builtin_io
