(* Blocks carry no in-memory header: metadata lives in a side table keyed by
   block address. This keeps simulated memory free of allocator noise (the
   paper's pointer clustering sees only application data) while preserving
   the reuse behaviour that matters: freed blocks return to a first-fit free
   list, live blocks pin their pages. *)

type free_block = { faddr : int; fsize : int }

type t = {
  mem : Mem.t;
  base : int;
  mutable top : int;  (* first unallocated address *)
  mutable mapped_to : int;  (* first unmapped page boundary *)
  mutable free_list : free_block list;
  sizes : (int, int) Hashtbl.t;  (* live block -> size *)
  mutable live : int;
}

let create mem ~base =
  { mem; base; top = base; mapped_to = base; free_list = []; sizes = Hashtbl.create 256; live = 0 }

let ensure_mapped t upto =
  if upto > t.mapped_to then begin
    let map_to = Addr.align_up upto ~align:Addr.page_size in
    if map_to > Addr.heap_limit then raise Out_of_memory;
    Mem.map t.mem t.mapped_to (map_to - t.mapped_to) Perm.rw;
    t.mapped_to <- map_to
  end

let register t addr size =
  Hashtbl.replace t.sizes addr size;
  t.live <- t.live + size;
  addr

let take_fit t size =
  (* First fit; split the remainder back when it is worth keeping. *)
  let rec go acc = function
    | [] -> None
    | b :: rest when b.fsize >= size ->
        let remainder =
          if b.fsize - size >= 32 then [ { faddr = b.faddr + size; fsize = b.fsize - size } ]
          else []
        in
        t.free_list <- List.rev_append acc (remainder @ rest);
        Some b.faddr
    | b :: rest -> go (b :: acc) rest
  in
  go [] t.free_list

let malloc t size =
  if size <= 0 then invalid_arg "Heap.malloc: non-positive size";
  let size = Addr.align_up size ~align:16 in
  match take_fit t size with
  | Some addr -> register t addr size
  | None ->
      let addr = t.top in
      ensure_mapped t (addr + size);
      t.top <- addr + size;
      register t addr size

let malloc_pages t n =
  if n <= 0 then invalid_arg "Heap.malloc_pages: non-positive count";
  let size = n * Addr.page_size in
  let addr = Addr.align_up t.top ~align:Addr.page_size in
  (* The alignment gap is returned to the free list rather than leaked. *)
  if addr > t.top then
    t.free_list <- { faddr = t.top; fsize = addr - t.top } :: t.free_list;
  ensure_mapped t (addr + size);
  t.top <- addr + size;
  register t addr size

let free t addr =
  match Hashtbl.find_opt t.sizes addr with
  | None -> invalid_arg (Printf.sprintf "Heap.free: 0x%x is not a live block" addr)
  | Some size ->
      Hashtbl.remove t.sizes addr;
      t.live <- t.live - size;
      t.free_list <- { faddr = addr; fsize = size } :: t.free_list

let block_size t addr =
  match Hashtbl.find_opt t.sizes addr with
  | None -> invalid_arg "Heap.block_size: not a live block"
  | Some s -> s

let live_bytes t = t.live

let brk t = t.top
