(** Cycle cost model with the paper's four machine profiles (Section 6.1).

    Each profile gives per-class instruction costs, a front-end fetch
    bandwidth, instruction-cache geometry and miss penalty, and fixed costs
    for the intercepted library ("builtin") calls. The absolute values are
    first-principles estimates; what the reproduction relies on is the
    *structure*: BTRA pushes are store-port bound (one each), an AVX2 store
    moves 32 bytes for about the price of one push, and bigger call sites
    cost fetch bandwidth and icache lines. *)

type profile = {
  name : string;
  alu : float;
  mov_rr : float;
  mov_load : float;
  mov_store : float;
  lea : float;
  push : float;
  pop : float;
  div : float;
  setcc : float;
  jmp : float;
  jcc_taken : float;
  jcc_not_taken : float;
  call : float;
  call_ind : float;
  ret : float;
  nop : float;
  trap : float;
  vload : float;
  vstore : float;
  vzeroupper : float;
  halt : float;
  fetch_bytes_per_cycle : float;  (** front-end decode bandwidth *)
  icache_lines : int;
  icache_line_bytes : int;
  icache_miss_penalty : float;
  builtin_alloc : float;  (** malloc / malloc_pages / free *)
  builtin_mprotect : float;
  builtin_io : float;  (** print / read_input / sensitive / exit *)
}

val i9_9900k : profile
val epyc_rome : profile
val tr_3970x : profile
val xeon_8358 : profile

(** The paper's four evaluation machines. *)
val all_machines : profile list

(** [base_cost p i] — execution cost excluding front-end effects (those are
    charged by the CPU from [size] and the icache). *)
val base_cost : profile -> Insn.t -> float

(** [builtin_cost p name] — cost of an intercepted library call. *)
val builtin_cost : profile -> string -> float
