let annotate (insn : Insn.t) =
  let is_bt s = String.length s >= 5 && String.sub s 0 5 = "__bt_" in
  let is_cs s = String.length s >= 9 && String.sub s 0 9 = "__r2c_cs_" in
  match insn with
  | Insn.Push (Imm (Sym (s, _))) when is_bt s -> "  ; BTRA (booby-trapped return address)"
  | Insn.Push (Imm (Sym (s, _)))
    when String.length s >= 5 && String.sub s 0 5 = "__ra_" ->
      "  ; return address pre-write (Figure 3)"
  | Insn.Vload (_, { disp = Sym (s, _); _ })
  | Insn.Vload128 (_, { disp = Sym (s, _); _ })
  | Insn.Vload512 (_, { disp = Sym (s, _); _ })
    when is_cs s ->
      "  ; BTRA batch load (Figure 4)"
  | Insn.Mov (Reg R11, Mem { disp = Sym (s, _); _ })
    when String.length s >= 11 && String.sub s 0 11 = "__r2c_btdp_" ->
      "  ; BTDP array pointer"
  | Insn.Trap -> "  ; trap"
  | _ -> ""

(* Pre-link symbolic annotations are resolved away in a linked image, so
   artifact detection works structurally instead. *)
let annotate_resolved (img : Image.t) (insn : Insn.t) =
  let bt_target a =
    match Image.func_of_addr img a with
    | Some f when f.Image.is_booby_trap -> true
    | Some _ | None -> false
  in
  match insn with
  | Insn.Push (Imm (Abs a)) when bt_target a -> "  ; BTRA -> booby trap"
  | Insn.Push (Imm (Abs a)) when Image.code_at img a <> None ->
      "  ; return address pre-write (Figure 3)"
  | Insn.Vload (_, _) | Insn.Vload128 (_, _) | Insn.Vload512 (_, _) ->
      "  ; BTRA batch load (Figure 4)"
  | Insn.Trap -> "  ; trap"
  | _ -> annotate insn

let function_listing (img : Image.t) (f : Image.func_info) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%08x <%s>%s:\n" f.entry f.fname
       (if f.is_booby_trap then "  ; BOOBY TRAP FUNCTION" else ""));
  let addr = ref f.entry in
  while !addr < f.entry + f.code_len do
    match Image.code_at img !addr with
    | Some (insn, len) ->
        Buffer.add_string buf
          (Printf.sprintf "  %8x:  %-34s%s\n" !addr (Insn.to_string insn)
             (annotate_resolved img insn));
        addr := !addr + len
    | None -> addr := !addr + 1
  done;
  Buffer.contents buf

let summary (img : Image.t) =
  let traps =
    List.length (List.filter (fun f -> f.Image.is_booby_trap) img.Image.funcs)
  in
  Printf.sprintf
    "text: %d bytes at 0x%x (%s), %d functions (%d booby traps)\n\
     data: %d bytes at 0x%x; stack: %d KB; unwind rows: %d functions, %d sites%s\n"
    img.Image.text_len img.Image.text_base
    (Perm.to_string img.Image.text_perm)
    (List.length img.Image.funcs)
    traps img.Image.data_len img.Image.data_base
    (img.Image.stack_bytes / 1024)
    (Array.length img.Image.unwind_funcs)
    (Hashtbl.length img.Image.unwind_sites)
    (if img.Image.shadow_stack then "; shadow-stack CFI" else "")

let image (img : Image.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (summary img);
  Buffer.add_char buf '\n';
  let by_addr =
    List.sort (fun (a : Image.func_info) b -> compare a.entry b.entry) img.Image.funcs
  in
  List.iter
    (fun f ->
      Buffer.add_string buf (function_listing img f);
      Buffer.add_char buf '\n')
    by_addr;
  Buffer.contents buf
