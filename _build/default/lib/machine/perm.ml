type t = { read : bool; write : bool; exec : bool }

let none = { read = false; write = false; exec = false }
let ro = { read = true; write = false; exec = false }
let rw = { read = true; write = true; exec = false }
let rx = { read = true; write = false; exec = true }
let rwx = { read = true; write = true; exec = true }
let xo = { read = false; write = false; exec = true }

let to_string p =
  Printf.sprintf "%c%c%c"
    (if p.read then 'r' else '-')
    (if p.write then 'w' else '-')
    (if p.exec then 'x' else '-')

let equal a b = a = b
