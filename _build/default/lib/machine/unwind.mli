(** Stack unwinding through R2C frames (Section 7.2.4).

    Walks a call stack using the image's unwind tables, stepping over BTRA
    pre/post offsets and pushed stack arguments — the exception-handling /
    backtrace support the paper emits CFI directives for. The walk starts
    from a return-address slot (e.g. the slot a library function sees at
    entry) and follows FDE rows until a return address with no row appears
    (the synthesized [_start]).

    The table rows are keyed by program-counter ranges and addresses, not
    function symbols: as the paper argues, leaked table *contents* do not
    help an attacker who lacks the randomized layout. *)

(** [backtrace mem img ~ra_slot] — return addresses of the active frames,
    innermost first. Sound between a frame's prologue end and epilogue
    start (not mid-call-setup), like real unwind tables at throw points. *)
val backtrace : Mem.t -> Image.t -> ra_slot:int -> int list
