(** The M64 instruction set — an x86-64-like ISA.

    The subset is exactly what the R2C code generator needs: the implicit
    push/overwrite semantics of [call]/[ret] that the BTRA setup of Figure 3
    exploits, AVX2-style 256-bit loads/stores for the optimized setup of
    Figure 4, variable-width NOPs and trap instructions for the
    sub-function randomization of Section 4.3.

    Instructions carry symbolic immediates ({!constructor-Sym}) until the linker
    resolves them; executing an unresolved instruction is a program error. *)

type reg =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

val reg_index : reg -> int
val reg_of_index : int -> reg
val reg_to_string : reg -> string
val all_regs : reg list

(** Immediate values: concrete, or a symbol plus byte offset resolved at
    link time (function entries, globals, booby-trap targets, GOT slots). *)
type imm = Abs of int | Sym of string * int

type scale = S1 | S2 | S4 | S8

val scale_factor : scale -> int

(** [base + index*scale + disp]; [disp] may be symbolic (globals). *)
type mem_operand = {
  base : reg option;
  index : (reg * scale) option;
  disp : imm;
}

val mem : ?base:reg -> ?index:reg * scale -> ?disp:int -> unit -> mem_operand
val mem_sym : ?base:reg -> ?index:reg * scale -> string -> int -> mem_operand

type operand = Imm of imm | Reg of reg | Mem of mem_operand

type cond = Eq | Ne | Lt | Le | Gt | Ge

val negate_cond : cond -> cond

type binop = Add | Sub | Imul | And | Or | Xor | Shl | Shr | Sar

(** Branch/call targets; [TSym] pre-link, [TAbs] post-link. *)
type target = TAbs of int | TSym of string * int

type t =
  | Mov of operand * operand  (** 64-bit move; at most one memory operand *)
  | Mov8 of operand * operand  (** byte move (zero-extending on loads) *)
  | Lea of reg * mem_operand
  | Push of operand
  | Pop of reg
  | Binop of binop * reg * operand
  | Div of reg * operand  (** signed quotient into [reg] *)
  | Rem of reg * operand  (** signed remainder into [reg] *)
  | Neg of reg
  | Cmp of operand * operand
  | Setcc of cond * reg  (** reg := compare-flag result as 0/1 *)
  | Jmp of target
  | Jmp_ind of operand
  | Jcc of cond * target
  | Call of target
  | Call_ind of operand
  | Ret
  | Nop of int  (** encoded width in bytes, 1..15 *)
  | Trap  (** int3 — booby trap body *)
  | Vload of int * mem_operand  (** ymm[i] := 32 bytes (vmovdqu) *)
  | Vstore of mem_operand * int  (** 32 bytes := ymm[i] *)
  | Vload128 of int * mem_operand  (** xmm[i] := 16 bytes (SSE movdqu) *)
  | Vstore128 of mem_operand * int
  | Vload512 of int * mem_operand  (** zmm[i] := 64 bytes (AVX-512) *)
  | Vstore512 of mem_operand * int
  | Vzeroupper
  | Halt  (** terminate the process; exit code in RAX *)

(** [size i] — encoded length in bytes (x86-64-flavoured variable length).
    Layout, gadget offsets and icache pressure all derive from this. *)
val size : t -> int

val to_string : t -> string

(** [is_resolved i] — no remaining symbolic immediates or targets. *)
val is_resolved : t -> bool

(** [map_syms f i] rewrites every symbolic immediate/target with [f sym
    off], producing absolute values — the linker's relocation step. *)
val map_syms : (string -> int -> int) -> t -> t
