(** Page permissions.

    The threat model (Section 3) assumes W^X for data and execute-only
    memory (XOM) for text; booby-trapped data pointers additionally rely on
    pages with *no* read permission (guard pages, Section 5.2). *)

type t = { read : bool; write : bool; exec : bool }

val none : t
val ro : t
val rw : t
val rx : t
val rwx : t

(** Execute-only: fetchable but neither readable nor writable — the
    leakage-resilience prerequisite of Section 4. *)
val xo : t

val to_string : t -> string
val equal : t -> t -> bool
