type outcome = Exited of int | Crashed of Fault.t | Timeout

type t = {
  image : Image.t;
  profile : Cost.profile;
  fuel : int;
  strict_align : bool;
  mutable cpu : Cpu.t;
  mutable detections : Fault.t list;
  mutable crashes : int;
  mutable restarts : int;
}

let start ?(profile = Cost.epyc_rome) ?(fuel = 50_000_000) ?(strict_align = false) image =
  {
    image;
    profile;
    fuel;
    strict_align;
    cpu = Loader.load ~strict_align ~profile image;
    detections = [];
    crashes = 0;
    restarts = 0;
  }

let record_fault t f =
  t.crashes <- t.crashes + 1;
  if Fault.is_detection f then t.detections <- f :: t.detections

let run t =
  match Cpu.run t.cpu ~fuel:t.fuel with
  | Cpu.Halted -> Exited t.cpu.Cpu.exit_code
  | Cpu.Fuel_exhausted -> Timeout
  | Cpu.Faulted f ->
      record_fault t f;
      Crashed f

let run_until t ~break =
  match Cpu.run_until t.cpu ~fuel:t.fuel ~break with
  | Ok () -> `Hit
  | Error Cpu.Halted -> `Done (Exited t.cpu.Cpu.exit_code)
  | Error Cpu.Fuel_exhausted -> `Done Timeout
  | Error (Cpu.Faulted f) ->
      record_fault t f;
      `Done (Crashed f)

let restart t =
  t.cpu <- Loader.load ~strict_align:t.strict_align ~profile:t.profile t.image;
  t.restarts <- t.restarts + 1

let outcome_to_string = function
  | Exited n -> Printf.sprintf "exited(%d)" n
  | Crashed f -> Printf.sprintf "crashed(%s)" (Fault.to_string f)
  | Timeout -> "timeout"

let cycles t = t.cpu.Cpu.cycles
let insns t = t.cpu.Cpu.insns
let calls t = t.cpu.Cpu.calls
let maxrss_bytes t = Mem.max_mapped_pages t.cpu.Cpu.mem * Addr.page_size
let output t = Cpu.output t.cpu
let sensitive_log t = t.cpu.Cpu.sensitive_log
let detected t = t.detections <> []
