(** Simulated libc heap allocator.

    A first-fit free-list allocator over the heap region, growing by mapping
    pages on demand. It exists because the BTDP constructor (Section 5.2)
    needs the exact glibc-like behaviours the paper relies on: page-aligned
    page-sized allocations whose pages can be individually [mprotect]ed, and
    the guarantee that an allocation which is never freed keeps its page out
    of reuse by later allocations. *)

type t

(** [create mem ~base] — allocator serving from [base] upward. *)
val create : Mem.t -> base:int -> t

(** [malloc t size] returns a 16-byte-aligned block. Raises [Out_of_memory]
    if the heap region is exhausted. *)
val malloc : t -> int -> int

(** [malloc_pages t n] returns a page-aligned block of [n] whole pages —
    the guard-page chunks of the BTDP constructor. *)
val malloc_pages : t -> int -> int

(** [free t addr] releases a block previously returned by an allocation
    function. Freeing an unknown address is an error. *)
val free : t -> int -> unit

(** [block_size t addr] — usable size of a live block. *)
val block_size : t -> int -> int

(** [live_bytes t] — total bytes in live blocks (diagnostics). *)
val live_bytes : t -> int

(** [brk t] — current top of the heap. *)
val brk : t -> int
