(** Objdump-style rendering of a linked image: functions in layout order
    with symbolized headers, and annotations on the R2C artifacts (booby
    trap bodies, BTRA pushes/batches, BTDP stores, prolog traps) so a
    diversified binary can be studied the way the paper's figures present
    theirs. *)

(** [function_listing img f] — one function's disassembly. *)
val function_listing : Image.t -> Image.func_info -> string

(** [image img] — the whole text section: section summary, then every
    function in address order. *)
val image : Image.t -> string

(** [summary img] — one paragraph: sizes, function/trap counts,
    permissions, unwind-table rows. *)
val summary : Image.t -> string
