(** Virtual address space layout.

    Region bases mirror a Linux x86-64 process so that the value-range
    clustering at the heart of AOCR's pointer analysis (Section 2.3) behaves
    as in the paper: text low, data and heap in the 0x5555... range, stack
    just below 0x7fffffffe000. Loader-applied ASLR slides stay inside each
    region's window, so {!region_of} remains a sound ground-truth classifier
    for tests and attack verification. *)

type t = int

val page_size : int
val page_shift : int

(** [page_of a] — index of the page containing [a]. *)
val page_of : t -> int

(** [page_base a] — address of the first byte of [a]'s page. *)
val page_base : t -> t

(** [page_offset a] — offset of [a] within its page. *)
val page_offset : t -> int

(** [align_up a ~align] rounds [a] up to a multiple of [align] (a power of
    two). *)
val align_up : t -> align:int -> t

val text_base : t
val text_limit : t
val data_base : t
val data_limit : t
val heap_base : t
val heap_limit : t
val stack_top : t
val stack_limit : t

type region = Text | Data | Heap | Stack | Unmapped_region

val region_of : t -> region
val region_to_string : region -> string

(** [pp] prints an address in hex. *)
val pp : Format.formatter -> t -> unit

val to_hex : t -> string
