lib/machine/cpu.ml: Addr Array Buffer Char Cost Fault Hashtbl Heap Icache Image Insn List Mem Perm Queue String Unwind
