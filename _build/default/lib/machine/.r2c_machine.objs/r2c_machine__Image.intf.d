lib/machine/image.mli: Hashtbl Insn Perm
