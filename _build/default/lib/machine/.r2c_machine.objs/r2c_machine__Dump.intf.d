lib/machine/dump.mli: Image
