lib/machine/unwind.mli: Image Mem
