lib/machine/heap.ml: Addr Hashtbl List Mem Perm Printf
