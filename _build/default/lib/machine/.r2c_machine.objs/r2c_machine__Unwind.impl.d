lib/machine/unwind.ml: Array Hashtbl Image List Mem
