lib/machine/addr.ml: Format Printf
