lib/machine/trace.mli: Cpu Insn
