lib/machine/cost.ml: Insn
