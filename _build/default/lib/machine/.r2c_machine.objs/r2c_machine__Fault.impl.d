lib/machine/fault.ml: Printf
