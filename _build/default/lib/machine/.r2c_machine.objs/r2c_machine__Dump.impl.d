lib/machine/dump.ml: Array Buffer Hashtbl Image Insn List Perm Printf String
