lib/machine/cpu.mli: Buffer Cost Fault Heap Icache Image Insn Mem Queue
