lib/machine/process.mli: Cost Cpu Fault Image
