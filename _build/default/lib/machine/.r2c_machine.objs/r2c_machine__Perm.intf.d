lib/machine/perm.mli:
