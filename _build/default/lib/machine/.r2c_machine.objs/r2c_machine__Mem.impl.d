lib/machine/mem.ml: Addr Bytes Char Fault Hashtbl Int64 List Perm Printf
