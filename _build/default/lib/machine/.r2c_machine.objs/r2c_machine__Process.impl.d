lib/machine/process.ml: Addr Cost Cpu Fault Image Loader Mem Printf
