lib/machine/trace.ml: Array Cpu Fault Hashtbl Image Insn List Printf String
