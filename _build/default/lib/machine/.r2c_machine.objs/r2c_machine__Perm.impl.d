lib/machine/perm.ml: Printf
