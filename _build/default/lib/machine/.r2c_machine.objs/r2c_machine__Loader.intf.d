lib/machine/loader.mli: Cost Cpu Image
