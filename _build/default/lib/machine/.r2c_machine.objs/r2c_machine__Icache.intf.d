lib/machine/icache.mli:
