lib/machine/insn.mli:
