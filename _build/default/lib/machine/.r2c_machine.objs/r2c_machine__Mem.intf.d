lib/machine/mem.mli: Perm
