lib/machine/insn.ml: Printf String
