lib/machine/image.ml: Hashtbl Insn List Perm
