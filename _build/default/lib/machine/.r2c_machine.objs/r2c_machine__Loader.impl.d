lib/machine/loader.ml: Addr Array Bytes Cpu Heap Image List Mem Perm
