lib/machine/heap.mli: Mem
