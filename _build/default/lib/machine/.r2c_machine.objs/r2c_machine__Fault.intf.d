lib/machine/fault.mli:
