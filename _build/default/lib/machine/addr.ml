type t = int

let page_size = 4096
let page_shift = 12
let page_of a = a lsr page_shift
let page_base a = a land lnot (page_size - 1)
let page_offset a = a land (page_size - 1)

let align_up a ~align =
  assert (align > 0 && align land (align - 1) = 0);
  (a + align - 1) land lnot (align - 1)

(* Non-PIE text like the paper's Figure 2 (return address 0x40055d); data,
   then heap above it, in the PIE/mmap range; stack just below the canonical
   Linux default. Each region window leaves room for an ASLR slide. *)
let text_base = 0x400000
let text_limit = 0x8000000 (* 128 MiB of window for text + slide *)
let data_base = 0x5555_5555_0000
let data_limit = 0x5555_5f00_0000
let heap_base = 0x5555_6000_0000
let heap_limit = 0x5556_4000_0000
let stack_top = 0x7fff_ffff_f000
let stack_limit = 0x7fff_f000_0000

type region = Text | Data | Heap | Stack | Unmapped_region

let region_of a =
  if a >= text_base && a < text_limit then Text
  else if a >= data_base && a < data_limit then Data
  else if a >= heap_base && a < heap_limit then Heap
  else if a >= stack_limit && a <= stack_top then Stack
  else Unmapped_region

let region_to_string = function
  | Text -> "text"
  | Data -> "data"
  | Heap -> "heap"
  | Stack -> "stack"
  | Unmapped_region -> "unmapped"

let pp fmt a = Format.fprintf fmt "0x%x" a

let to_hex a = Printf.sprintf "0x%x" a
