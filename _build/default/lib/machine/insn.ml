type reg =
  | RAX | RBX | RCX | RDX | RSI | RDI | RBP | RSP
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let reg_index = function
  | RAX -> 0 | RBX -> 1 | RCX -> 2 | RDX -> 3
  | RSI -> 4 | RDI -> 5 | RBP -> 6 | RSP -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let reg_of_index = function
  | 0 -> RAX | 1 -> RBX | 2 -> RCX | 3 -> RDX
  | 4 -> RSI | 5 -> RDI | 6 -> RBP | 7 -> RSP
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Insn.reg_of_index: %d" n)

let reg_to_string = function
  | RAX -> "rax" | RBX -> "rbx" | RCX -> "rcx" | RDX -> "rdx"
  | RSI -> "rsi" | RDI -> "rdi" | RBP -> "rbp" | RSP -> "rsp"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let all_regs =
  [ RAX; RBX; RCX; RDX; RSI; RDI; RBP; RSP;
    R8; R9; R10; R11; R12; R13; R14; R15 ]

type imm = Abs of int | Sym of string * int

type scale = S1 | S2 | S4 | S8

let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

type mem_operand = {
  base : reg option;
  index : (reg * scale) option;
  disp : imm;
}

let mem ?base ?index ?(disp = 0) () = { base; index; disp = Abs disp }
let mem_sym ?base ?index sym off = { base; index; disp = Sym (sym, off) }

type operand = Imm of imm | Reg of reg | Mem of mem_operand

type cond = Eq | Ne | Lt | Le | Gt | Ge

let negate_cond = function
  | Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

type binop = Add | Sub | Imul | And | Or | Xor | Shl | Shr | Sar

type target = TAbs of int | TSym of string * int

type t =
  | Mov of operand * operand
  | Mov8 of operand * operand
  | Lea of reg * mem_operand
  | Push of operand
  | Pop of reg
  | Binop of binop * reg * operand
  | Div of reg * operand
  | Rem of reg * operand
  | Neg of reg
  | Cmp of operand * operand
  | Setcc of cond * reg
  | Jmp of target
  | Jmp_ind of operand
  | Jcc of cond * target
  | Call of target
  | Call_ind of operand
  | Ret
  | Nop of int
  | Trap
  | Vload of int * mem_operand
  | Vstore of mem_operand * int
  | Vload128 of int * mem_operand
  | Vstore128 of mem_operand * int
  | Vload512 of int * mem_operand
  | Vstore512 of mem_operand * int
  | Vzeroupper
  | Halt

(* Encoded sizes, approximating x86-64: immediates that fit 32 bits use the
   short encodings; symbolic immediates are assumed to be resolvable into 32
   bits (text and GOT-relative values) except Mov reg, imm which uses the
   movabs form. *)

let fits32 = function Abs n -> n >= -0x8000_0000 && n < 0x1_0000_0000 | Sym _ -> true

let mem_size { base; index; disp } =
  let disp_bytes =
    match disp with
    | Abs 0 when base <> None -> 0
    | Abs n when n >= -128 && n < 128 -> 1
    | Abs _ | Sym _ -> 4
  in
  1 (* modrm *) + (if index <> None then 1 else 0) + (if base = None then 4 - disp_bytes else 0)
  + disp_bytes

let operand_size = function
  | Imm i -> if fits32 i then 4 else 8
  | Reg _ -> 0
  | Mem m -> mem_size m

let size = function
  | Mov (Reg _, Imm (Abs n)) when n < -0x8000_0000 || n >= 0x1_0000_0000 -> 10 (* movabs *)
  | Mov (Reg _, Imm _) -> 7
  | Mov (Reg _, Reg _) -> 3
  | Mov (Reg _, Mem m) | Mov (Mem m, Reg _) -> 3 + mem_size m
  | Mov (Mem m, Imm _) -> 7 + mem_size m
  | Mov (_, _) -> 10 (* not encodable on x86 either; conservative *)
  | Mov8 (Reg _, Mem m) | Mov8 (Mem m, Reg _) -> 3 + mem_size m
  | Mov8 (Mem m, Imm _) -> 3 + mem_size m
  | Mov8 (_, _) -> 4
  | Lea (_, m) -> 2 + mem_size m
  | Push (Reg _) -> 2
  | Push (Imm _) -> 5 (* push imm32, the BTRA embedding of Section 5.1 *)
  | Push (Mem m) -> 2 + mem_size m (* push from the GOT *)
  | Pop _ -> 2
  | Binop (_, _, o) -> 3 + operand_size o
  | Div (_, o) | Rem (_, o) -> 4 + operand_size o
  | Neg _ -> 3
  | Cmp (o1, o2) -> 3 + operand_size o1 + operand_size o2
  | Setcc _ -> 4
  | Jmp _ -> 5
  | Jmp_ind o -> 2 + operand_size o
  | Jcc _ -> 6
  | Call _ -> 5
  | Call_ind o -> 2 + operand_size o
  | Ret -> 1
  | Nop n -> n
  | Trap -> 1
  | Vload (_, m) | Vstore (m, _) -> 4 + mem_size m
  | Vload128 (_, m) | Vstore128 (m, _) -> 3 + mem_size m
  | Vload512 (_, m) | Vstore512 (m, _) -> 6 + mem_size m
  | Vzeroupper -> 3
  | Halt -> 2

let imm_to_string = function
  | Abs n -> Printf.sprintf "0x%x" n
  | Sym (s, 0) -> s
  | Sym (s, o) -> Printf.sprintf "%s+%d" s o

let mem_to_string { base; index; disp } =
  let parts =
    (match base with Some r -> [ reg_to_string r ] | None -> [])
    @ (match index with
      | Some (r, s) -> [ Printf.sprintf "%s*%d" (reg_to_string r) (scale_factor s) ]
      | None -> [])
    @ (match disp with Abs 0 when base <> None -> [] | d -> [ imm_to_string d ])
  in
  "[" ^ String.concat "+" parts ^ "]"

let operand_to_string = function
  | Imm i -> imm_to_string i
  | Reg r -> reg_to_string r
  | Mem m -> mem_to_string m

let cond_to_string = function
  | Eq -> "e" | Ne -> "ne" | Lt -> "l" | Le -> "le" | Gt -> "g" | Ge -> "ge"

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Imul -> "imul" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Sar -> "sar"

let target_to_string = function
  | TAbs a -> Printf.sprintf "0x%x" a
  | TSym (s, 0) -> s
  | TSym (s, o) -> Printf.sprintf "%s+%d" s o

let to_string = function
  | Mov (d, s) -> Printf.sprintf "mov %s, %s" (operand_to_string d) (operand_to_string s)
  | Mov8 (d, s) -> Printf.sprintf "movb %s, %s" (operand_to_string d) (operand_to_string s)
  | Lea (r, m) -> Printf.sprintf "lea %s, %s" (reg_to_string r) (mem_to_string m)
  | Push o -> Printf.sprintf "push %s" (operand_to_string o)
  | Pop r -> Printf.sprintf "pop %s" (reg_to_string r)
  | Binop (op, r, o) ->
      Printf.sprintf "%s %s, %s" (binop_to_string op) (reg_to_string r) (operand_to_string o)
  | Div (r, o) -> Printf.sprintf "div %s, %s" (reg_to_string r) (operand_to_string o)
  | Rem (r, o) -> Printf.sprintf "rem %s, %s" (reg_to_string r) (operand_to_string o)
  | Neg r -> Printf.sprintf "neg %s" (reg_to_string r)
  | Cmp (a, b) -> Printf.sprintf "cmp %s, %s" (operand_to_string a) (operand_to_string b)
  | Setcc (c, r) -> Printf.sprintf "set%s %s" (cond_to_string c) (reg_to_string r)
  | Jmp t -> Printf.sprintf "jmp %s" (target_to_string t)
  | Jmp_ind o -> Printf.sprintf "jmp *%s" (operand_to_string o)
  | Jcc (c, t) -> Printf.sprintf "j%s %s" (cond_to_string c) (target_to_string t)
  | Call t -> Printf.sprintf "call %s" (target_to_string t)
  | Call_ind o -> Printf.sprintf "call *%s" (operand_to_string o)
  | Ret -> "ret"
  | Nop n -> Printf.sprintf "nop%d" n
  | Trap -> "int3"
  | Vload (i, m) -> Printf.sprintf "vmovdqu ymm%d, %s" i (mem_to_string m)
  | Vstore (m, i) -> Printf.sprintf "vmovdqu %s, ymm%d" (mem_to_string m) i
  | Vload128 (i, m) -> Printf.sprintf "movdqu xmm%d, %s" i (mem_to_string m)
  | Vstore128 (m, i) -> Printf.sprintf "movdqu %s, xmm%d" (mem_to_string m) i
  | Vload512 (i, m) -> Printf.sprintf "vmovdqu64 zmm%d, %s" i (mem_to_string m)
  | Vstore512 (m, i) -> Printf.sprintf "vmovdqu64 %s, zmm%d" (mem_to_string m) i
  | Vzeroupper -> "vzeroupper"
  | Halt -> "hlt"

let imm_resolved = function Abs _ -> true | Sym _ -> false

let mem_resolved m = imm_resolved m.disp

let operand_resolved = function
  | Imm i -> imm_resolved i
  | Reg _ -> true
  | Mem m -> mem_resolved m

let target_resolved = function TAbs _ -> true | TSym _ -> false

let is_resolved = function
  | Mov (a, b) | Mov8 (a, b) | Cmp (a, b) -> operand_resolved a && operand_resolved b
  | Lea (_, m) -> mem_resolved m
  | Push o | Jmp_ind o | Call_ind o | Binop (_, _, o) | Div (_, o) | Rem (_, o) ->
      operand_resolved o
  | Jmp t | Jcc (_, t) | Call t -> target_resolved t
  | Vload (_, m) | Vstore (m, _)
  | Vload128 (_, m) | Vstore128 (m, _)
  | Vload512 (_, m) | Vstore512 (m, _) -> mem_resolved m
  | Pop _ | Neg _ | Setcc _ | Ret | Nop _ | Trap | Vzeroupper | Halt -> true

let map_syms f =
  let imm = function Abs n -> Abs n | Sym (s, o) -> Abs (f s o) in
  let memo m = { m with disp = imm m.disp } in
  let op = function
    | Imm i -> Imm (imm i)
    | Reg r -> Reg r
    | Mem m -> Mem (memo m)
  in
  let tgt = function TAbs a -> TAbs a | TSym (s, o) -> TAbs (f s o) in
  function
  | Mov (a, b) -> Mov (op a, op b)
  | Mov8 (a, b) -> Mov8 (op a, op b)
  | Lea (r, m) -> Lea (r, memo m)
  | Push o -> Push (op o)
  | Pop r -> Pop r
  | Binop (b, r, o) -> Binop (b, r, op o)
  | Div (r, o) -> Div (r, op o)
  | Rem (r, o) -> Rem (r, op o)
  | Neg r -> Neg r
  | Cmp (a, b) -> Cmp (op a, op b)
  | Setcc (c, r) -> Setcc (c, r)
  | Jmp t -> Jmp (tgt t)
  | Jmp_ind o -> Jmp_ind (op o)
  | Jcc (c, t) -> Jcc (c, tgt t)
  | Call t -> Call (tgt t)
  | Call_ind o -> Call_ind (op o)
  | Ret -> Ret
  | Nop n -> Nop n
  | Trap -> Trap
  | Vload (i, m) -> Vload (i, memo m)
  | Vstore (m, i) -> Vstore (memo m, i)
  | Vload128 (i, m) -> Vload128 (i, memo m)
  | Vstore128 (m, i) -> Vstore128 (memo m, i)
  | Vload512 (i, m) -> Vload512 (i, memo m)
  | Vstore512 (m, i) -> Vstore512 (memo m, i)
  | Vzeroupper -> Vzeroupper
  | Halt -> Halt
