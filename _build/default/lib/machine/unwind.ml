(* Frame walk:

   At a return-address slot S holding RA (which returns into function F at
   some call site), the FDE row for RA gives the words between S and F's
   frame base (BTRA pre-offset plus pushed stack arguments); F's CIE row
   gives its frame size and post-offset. F's own return address then sits
   at

     S + 8 + 8*site_words(RA) + frame_size(F) + 8*post_words(F).        *)

let func_row (img : Image.t) addr =
  (* Binary search over (entry, len, frame, post) rows ascending by entry. *)
  let rows = img.Image.unwind_funcs in
  let rec search lo hi =
    if lo > hi then None
    else
      let mid = (lo + hi) / 2 in
      let entry, len, frame, post = rows.(mid) in
      if addr < entry then search lo (mid - 1)
      else if addr >= entry + len then search (mid + 1) hi
      else Some (frame, post)
  in
  search 0 (Array.length rows - 1)

let backtrace mem (img : Image.t) ~ra_slot =
  let rec walk slot acc guard =
    if guard <= 0 then List.rev acc
    else
      match Mem.peek_u64 mem slot with
      | None -> List.rev acc
      | Some ra -> (
          match Hashtbl.find_opt img.Image.unwind_sites ra with
          | None -> List.rev acc (* _start or a corrupted chain *)
          | Some site_words -> (
              match func_row img ra with
              | None -> List.rev (ra :: acc)
              | Some (frame, post) ->
                  let next = slot + 8 + (8 * site_words) + frame + (8 * post) in
                  walk next (ra :: acc) (guard - 1)))
  in
  walk ra_slot [] 256
