(** Executable models of the related defenses compared in Table 3.

    Each model is a diversity configuration plus the defense-specific
    behaviours the attacks interact with:

    - {b unprotected} — W^X only; the legacy baseline every attack beats.
    - {b aslr} — page-granular slides, readable text; what PIROP and
      JIT-ROP were built to beat.
    - {b CodeArmor} [19] — code-space virtualization: function shuffling,
      execute-only text, re-randomization on worker respawn, and
      code-pointer abstraction (modelled as CPH trampolines). Susceptible
      to AOCR (Section 8.1).
    - {b TASR} [10] — live re-randomization at I/O boundaries, modelled as
      a fresh layout on every attacker interaction window; data layout
      untouched, so AOCR's steps survive.
    - {b StackArmor} [20] — stack-frame diversification: slot shuffling
      plus heavy frame padding; no code or data-section protection.
    - {b Readactor} [25] — function shuffling + XOM + code-pointer hiding
      (trampolines) + booby-trapped trampoline table; the defense AOCR
      broke.
    - {b kR^X} [56] — return-address decoys: a single decoy per return
      address (BTRA with R=1), XOM, shuffling; no heap-pointer protection
      (Table 3 footnote 3).
    - {b R2C} — the full system (Figure 6 configuration).

    [cph] makes taken function addresses point at trampolines;
    [rerandomize] gives every respawned worker a fresh layout. *)

type t = {
  name : string;
  cfg : R2c_core.Dconfig.t;
  cph : bool;
  rerandomize : bool;
  shadow_stack : bool;  (** deploy under backward-edge CFI (Section 8.2) *)
  paper_overhead : string;  (** as reported in Table 3 *)
  cpp_support : bool;  (** Table 3's C++ column *)
  footnote : string;
}

val unprotected : t
val aslr : t
val codearmor : t
val tasr : t
val stackarmor : t
val readactor : t
val krx : t
val r2c : t

(** The Table 3 rows, in paper order. *)
val all : t list

(** R2C variants for the extension experiments of Sections 5.1 and 7.3:
    the rejected naive (race-window) decoy scheme, the post-return BTRA
    consistency checks, non-PIE builds for the worker-respawn brute-force
    scenario, and load-time re-randomization. *)

val r2c_naive : t
val r2c_checked : t
val r2c_nopie : t
val r2c_checked_nopie : t
val r2c_rerand : t

(** Section 8.2: a backward-edge-CFI (shadow stack) deployment, alone and
    composed with R2C — enforcement stops every return-address corruption
    but is blind to AOCR's forward-edge whole-function reuse. *)
val cfi : t

val r2c_cfi : t
val variants : t list

(** [build t ~seed program ~extra_raw] — compile a program under the model
    (adds CPH trampolines when the model hides code pointers). *)
val build :
  t ->
  seed:int ->
  extra_raw:R2c_compiler.Opts.raw_func list ->
  Ir.program ->
  R2c_machine.Image.t

(** [build_vulnapp t ~seed] — the vulnerable server under the model. *)
val build_vulnapp : t -> seed:int -> R2c_machine.Image.t
