open R2c_machine

type verdict =
  | Consistent of Process.outcome
  | Divergence of { variant : int; detail : string }

type observation = {
  outcome : Process.outcome;
  output : string;
  sensitive : (int * int) list;
}

let observe img inputs =
  let p = Process.start img in
  List.iter (Cpu.push_input p.Process.cpu) inputs;
  let outcome = Process.run p in
  { outcome; output = Process.output p; sensitive = Process.sensitive_log p }

(* Outcomes compare structurally except crash *addresses*, which differ
   across variants by construction: only the fault kind is monitored. *)
let outcome_kind = function
  | Process.Exited n -> Printf.sprintf "exit(%d)" n
  | Process.Crashed f -> (
      match f with
      | Fault.Segv _ -> "segv"
      | Fault.Guard_page _ -> "guard-page"
      | Fault.Booby_trap _ -> "booby-trap"
      | Fault.Misaligned_stack _ -> "misaligned"
      | Fault.Invalid_opcode _ -> "sigill"
      | Fault.Division_by_zero _ -> "sigfpe"
      | Fault.Cfi_violation _ -> "cfi")
  | Process.Timeout -> "timeout"

let run ~build ~seeds ~inputs =
  match seeds with
  | [] -> invalid_arg "Mvee.run: no variants"
  | first :: rest ->
      let reference = observe (build ~seed:first) inputs in
      let rec check i = function
        | [] -> Consistent reference.outcome
        | seed :: tl ->
            let v = observe (build ~seed) inputs in
            if outcome_kind v.outcome <> outcome_kind reference.outcome then
              Divergence
                {
                  variant = i;
                  detail =
                    Printf.sprintf "outcome %s vs %s" (outcome_kind v.outcome)
                      (outcome_kind reference.outcome);
                }
            else if v.output <> reference.output then
              Divergence { variant = i; detail = "output differs" }
            else if v.sensitive <> reference.sensitive then
              Divergence { variant = i; detail = "privileged-call log differs" }
            else check (i + 1) tl
      in
      check 1 rest

let verdict_to_string = function
  | Consistent o -> "consistent (" ^ Process.outcome_to_string o ^ ")"
  | Divergence { variant; detail } ->
      Printf.sprintf "DIVERGENCE at variant %d: %s" variant detail
