lib/defenses/mvee.mli: R2c_machine
