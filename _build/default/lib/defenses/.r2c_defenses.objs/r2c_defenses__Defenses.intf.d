lib/defenses/defenses.mli: Ir R2c_compiler R2c_core R2c_machine
