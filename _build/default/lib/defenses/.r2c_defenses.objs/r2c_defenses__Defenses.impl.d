lib/defenses/defenses.ml: Ir List R2c_compiler R2c_core R2c_machine R2c_workloads
