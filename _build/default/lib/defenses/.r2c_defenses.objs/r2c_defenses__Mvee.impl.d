lib/defenses/mvee.ml: Cpu Fault List Printf Process R2c_machine
