(** Multi-Variant Execution (Section 7.3).

    "MVEEs and diversification defenses like R2C naturally complement each
    other. Considering that R2C diversifies along multiple dimensions, an
    MVEE would detect data corruption or leakage in one of the variants
    with high probability."

    [run] feeds the same input stream to N differently-seeded variants of
    a program and runs them in lockstep to completion, comparing the
    observable behaviour (outcome, printed output, privileged-call log).
    Any divergence is the detection signal: an exploit tailored to one
    variant's layout behaves differently on its siblings. *)

type verdict =
  | Consistent of R2c_machine.Process.outcome
      (** every variant behaved identically *)
  | Divergence of { variant : int; detail : string }
      (** variant [variant] (0-based) differs from variant 0 *)

(** [run ~build ~seeds ~inputs] — [build seed] produces one variant's
    image. *)
val run :
  build:(seed:int -> R2c_machine.Image.t) -> seeds:int list -> inputs:string list -> verdict

val verdict_to_string : verdict -> string
