module Dconfig = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
module Opts = R2c_compiler.Opts
module Insn = R2c_machine.Insn

type t = {
  name : string;
  cfg : Dconfig.t;
  cph : bool;
  rerandomize : bool;
  shadow_stack : bool;
  paper_overhead : string;
  cpp_support : bool;
  footnote : string;
}

let unprotected =
  {
    name = "unprotected";
    cfg = Dconfig.baseline;
    cph = false;
    rerandomize = false;
    shadow_stack = false;
    paper_overhead = "0";
    cpp_support = true;
    footnote = "W^X only";
  }

let aslr =
  {
    name = "aslr";
    cfg = { Dconfig.baseline with aslr = true };
    cph = false;
    rerandomize = false;
    shadow_stack = false;
    paper_overhead = "~0";
    cpp_support = true;
    footnote = "page-granular slides";
  }

let codearmor =
  {
    name = "CodeArmor";
    cfg =
      {
        Dconfig.baseline with
        shuffle_functions = true;
        xom = true;
        aslr = true;
      };
    cph = true;
    rerandomize = true;
    shadow_stack = false;
    paper_overhead = "6.9";
    cpp_support = false;
    footnote = "no exception support; code locators similar to CPH";
  }

let tasr =
  {
    name = "TASR";
    cfg = { Dconfig.baseline with aslr = true };
    cph = false;
    rerandomize = true;
    shadow_stack = false;
    paper_overhead = "2.1";
    cpp_support = false;
    footnote = "re-randomizes at I/O; C-only source analysis";
  }

let stackarmor =
  {
    name = "StackArmor";
    cfg =
      {
        Dconfig.baseline with
        shuffle_stack_slots = true;
        slot_padding_max = 128;
        aslr = true;
      };
    cph = false;
    rerandomize = false;
    shadow_stack = false;
    paper_overhead = "28.2";
    cpp_support = false;
    footnote = "binary-only stack diversification; measures cycles";
  }

let readactor =
  {
    name = "Readactor";
    cfg =
      {
        Dconfig.baseline with
        shuffle_functions = true;
        randomize_regalloc = true;
        xom = true;
        aslr = true;
        booby_trap_funcs = 32;
      };
    cph = true;
    rerandomize = false;
    shadow_stack = false;
    paper_overhead = "6.4";
    cpp_support = false;
    footnote = "code-pointer hiding; broken by AOCR";
  }

let krx =
  {
    name = "kR^X";
    cfg =
      {
        Dconfig.baseline with
        btra =
          Some
            {
              Dconfig.total = 1;
              setup = Dconfig.Push;
              to_builtins = false;
              max_post = 1;
              check_after_return = false;
            };
        shuffle_functions = true;
        xom = true;
        aslr = true;
        oia = true;
        booby_trap_funcs = 8;
      };
    cph = false;
    rerandomize = false;
    shadow_stack = false;
    paper_overhead = "n/a (kernel)";
    cpp_support = false;
    footnote = "single return-address decoy; no heap pointer protection";
  }

let r2c =
  {
    name = "R2C";
    cfg = Dconfig.full ();
    cph = false;
    rerandomize = false;
    shadow_stack = false;
    paper_overhead = "6.6-8.5";
    cpp_support = true;
    footnote = "this work";
  }

let all = [ unprotected; aslr; codearmor; tasr; stackarmor; readactor; krx; r2c ]

(* R2C variants for the ablation/extension experiments. *)

let r2c_naive =
  {
    r2c with
    name = "R2C-naive";
    cfg = Dconfig.full ~setup:Dconfig.Naive ();
    footnote = "rejected kR^X-style decoy scheme: the race window of Section 5.1";
  }

let r2c_checked =
  {
    r2c with
    name = "R2C-checked";
    cfg = Dconfig.full_checked;
    footnote = "Section 7.3 hardening: BTRA consistency checks after return";
  }

let r2c_nopie =
  {
    r2c with
    name = "R2C-noPIE";
    cfg = { (Dconfig.full ()) with aslr = false };
    footnote = "non-PIE build: the worker-respawn brute-force scenario";
  }

let r2c_checked_nopie =
  {
    r2c_checked with
    name = "R2C-checked-noPIE";
    cfg = { Dconfig.full_checked with aslr = false };
  }

let r2c_rerand =
  {
    r2c with
    name = "R2C-rerand";
    rerandomize = true;
    footnote = "Section 7.3: load-time re-randomization on worker respawn";
  }

(* Section 8.2: enforcement-based comparison. A shadow stack kills every
   return-address corruption outright — and is blind to AOCR's
   forward-edge whole-function reuse, which is the paper's point about
   orthogonality. *)
let cfi =
  {
    name = "CFI-shadow";
    cfg = { Dconfig.baseline with aslr = true };
    cph = false;
    rerandomize = false;
    shadow_stack = true;
    paper_overhead = "n/a (Section 8.2)";
    cpp_support = true;
    footnote = "backward-edge CFI (shadow stack); forward edges unchecked";
  }

let r2c_cfi =
  {
    r2c with
    name = "R2C+CFI";
    shadow_stack = true;
    footnote = "Section 8.2: R2C and CFI are orthogonal and compose";
  }

let variants =
  [ r2c_naive; r2c_checked; r2c_nopie; r2c_checked_nopie; r2c_rerand; cfi; r2c_cfi ]

let trampoline_name f = "__tramp_" ^ f

let build t ~seed ~extra_raw (p : Ir.program) =
  let p', opts = Pipeline.instrument ~extra_raw ~seed t.cfg p in
  let opts =
    if t.shadow_stack then { opts with Opts.shadow_stack = true } else opts
  in
  let opts =
    if not t.cph then opts
    else begin
      (* Code-pointer hiding: every taken function address resolves to a
         jump-only trampoline; the trampolines live in (execute-only) text
         and are shuffled like everything else. *)
      let trampolines =
        List.map
          (fun (f : Ir.func) ->
            {
              Opts.rname = trampoline_name f.name;
              rinsns = [ Insn.Jmp (Insn.TSym (f.name, 0)) ];
              rbooby_trap = false;
            })
          p'.Ir.funcs
      in
      {
        opts with
        Opts.func_alias = trampoline_name;
        raw_funcs = opts.Opts.raw_funcs @ trampolines;
      }
    end
  in
  R2c_compiler.Driver.compile ~opts p'

let build_vulnapp t ~seed =
  build t ~seed ~extra_raw:R2c_workloads.Vulnapp.runtime_stubs
    (R2c_workloads.Vulnapp.program ())
