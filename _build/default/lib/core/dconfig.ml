type btra_setup = Push | Naive | Sse | Avx | Avx512

type btra = {
  total : int;
  setup : btra_setup;
  to_builtins : bool;
  max_post : int;
  check_after_return : bool;
}

type btdp = {
  min_per_func : int;
  max_per_func : int;
  array_size : int;
  guard_pages : int;
  alloc_rounds : int;
  decoys : int;
  skip_frameless : bool;
}

type t = {
  btra : btra option;
  btdp : btdp option;
  nops : (int * int) option;
  prolog_traps : (int * int) option;
  shuffle_functions : bool;
  shuffle_globals : bool;
  global_padding_max : int;
  shuffle_stack_slots : bool;
  slot_padding_max : int;
  randomize_regalloc : bool;
  oia : bool;
  xom : bool;
  aslr : bool;
  booby_trap_funcs : int;
}

let baseline =
  {
    btra = None;
    btdp = None;
    nops = None;
    prolog_traps = None;
    shuffle_functions = false;
    shuffle_globals = false;
    global_padding_max = 0;
    shuffle_stack_slots = false;
    slot_padding_max = 0;
    randomize_regalloc = false;
    oia = false;
    xom = false;
    aslr = false;
    booby_trap_funcs = 0;
  }

let default_btra setup =
  { total = 10; setup; to_builtins = true; max_post = 4; check_after_return = false }

let default_btdp =
  {
    min_per_func = 0;
    max_per_func = 5;
    array_size = 48;
    guard_pages = 16;
    alloc_rounds = 64;
    decoys = 2;
    skip_frameless = true;
  }

let full ?(setup = Avx) () =
  {
    btra = Some (default_btra setup);
    btdp = Some default_btdp;
    nops = Some (1, 9);
    prolog_traps = Some (1, 5);
    shuffle_functions = true;
    shuffle_globals = true;
    global_padding_max = 64;
    shuffle_stack_slots = true;
    slot_padding_max = 32;
    randomize_regalloc = true;
    oia = true;
    xom = true;
    aslr = true;
    booby_trap_funcs = 48;
  }

(* The paper's BTRA isolation runs combine 10 BTRAs with 1-9 NOPs
   (Section 6.2.1). *)
let btra_push_only =
  {
    baseline with
    btra = Some (default_btra Push);
    nops = Some (1, 9);
    oia = true;
    booby_trap_funcs = 48;
  }

let btra_avx_only =
  {
    baseline with
    btra = Some (default_btra Avx);
    nops = Some (1, 9);
    oia = true;
    booby_trap_funcs = 48;
  }

let btra_sse_only =
  {
    baseline with
    btra = Some (default_btra Sse);
    nops = Some (1, 9);
    oia = true;
    booby_trap_funcs = 48;
  }

let btra_avx512_only =
  {
    baseline with
    btra = Some (default_btra Avx512);
    nops = Some (1, 9);
    oia = true;
    booby_trap_funcs = 48;
  }

let full_checked =
  let f = full () in
  {
    f with
    btra = Some { (default_btra Avx) with check_after_return = true };
  }

let btdp_only = { baseline with btdp = Some default_btdp }

let prolog_only = { baseline with prolog_traps = Some (1, 5) }

let layout_only =
  {
    baseline with
    shuffle_functions = true;
    shuffle_globals = true;
    global_padding_max = 64;
    shuffle_stack_slots = true;
    slot_padding_max = 32;
    randomize_regalloc = true;
  }

let oia_only = { baseline with oia = true }

let describe t =
  let flags = ref [] in
  let add name cond = if cond then flags := name :: !flags in
  (match t.btra with
  | Some b ->
      add
        (Printf.sprintf "btra(%s,%d%s)"
           (match b.setup with
           | Push -> "push"
           | Naive -> "naive"
           | Sse -> "sse"
           | Avx -> "avx"
           | Avx512 -> "avx512")
           b.total
           ((if b.to_builtins then ",lib" else "")
           ^ if b.check_after_return then ",chk" else ""))
        true
  | None -> ());
  (match t.btdp with
  | Some b -> add (Printf.sprintf "btdp(%d-%d)" b.min_per_func b.max_per_func) true
  | None -> ());
  (match t.nops with Some (a, b) -> add (Printf.sprintf "nops(%d-%d)" a b) true | None -> ());
  (match t.prolog_traps with
  | Some (a, b) -> add (Printf.sprintf "prolog(%d-%d)" a b) true
  | None -> ());
  add "shuffle-funcs" t.shuffle_functions;
  add "shuffle-globals" t.shuffle_globals;
  add "shuffle-slots" t.shuffle_stack_slots;
  add "rand-regalloc" t.randomize_regalloc;
  add "oia" t.oia;
  add "xom" t.xom;
  add "aslr" t.aslr;
  match !flags with [] -> "baseline" | fs -> String.concat "+" (List.rev fs)
