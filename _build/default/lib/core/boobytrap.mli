(** Booby-trap functions (Section 4.1).

    Small trap-bodied functions distributed through the text section by
    function shuffling. BTRAs point at byte offsets inside them, so a
    booby-trapped return address has the same value range as a benign one;
    transferring control there raises {!R2c_machine.Fault.constructor-Booby_trap}. *)

type target = string * int  (** function symbol, byte offset *)

(** [generate rng ~count] — [count] booby-trap functions of randomized
    length, plus the pool of distinct BTRA target addresses they provide. *)
val generate : R2c_util.Rng.t -> count:int -> R2c_compiler.Opts.raw_func list * target array

(** A usage-balanced target pool: {!pick} prefers the least-used targets
    with random tie-breaking, implementing the paper's avoid-reuse-between-
    call-sites policy with tolerated occasional reuse (Section 4.1). *)
type pool

val pool_of_targets : target array -> pool

(** [pick rng pool ~n] — [n] distinct targets. *)
val pick : R2c_util.Rng.t -> pool -> n:int -> target list
