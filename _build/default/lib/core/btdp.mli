(** Booby-trapped data pointers (Sections 4.2 and 5.2).

    Synthesizes the runtime constructor that, at program start:

    + allocates [alloc_rounds] page-aligned page-sized heap chunks;
    + frees all but a compile-time-chosen subset of [guard_pages];
    + fills a heap-allocated pointer array with addresses at random in-page
      offsets of the kept pages;
    + stores only the array's address in the data section (the hardened
      scheme of Figure 5), along with decoy BTDPs that never appear on the
      stack;
    + revokes read permission from the kept pages.

    The constructor is ordinary IR: it is compiled, diversified and linked
    like application code. Per-function instrumentation indices are served
    by {!indices}. *)

type t = {
  ctor : Ir.func;
  globals : Ir.global list;  (** added to the program (referenced by IR) *)
  array_sym : string;  (** data slot holding the heap array pointer *)
  cfg : Dconfig.btdp;
  seed : int;
}

(** [build ~rng ~cfg ~seed] — synthesize the constructor and its data. *)
val build : rng:R2c_util.Rng.t -> cfg:Dconfig.btdp -> seed:int -> t

(** [ctor_name] — the constructor's function symbol. *)
val ctor_name : string

(** [indices t ~fname ~writes_frame] — BTDP array indices for one function
    (deterministic in [seed] and [fname]); empty when the function makes no
    stack writes and [skip_frameless] is on. *)
val indices : t -> fname:string -> writes_frame:bool -> int list
