module Rng = R2c_util.Rng
module Opts = R2c_compiler.Opts

type t = {
  plans : (string * int, Opts.callsite_plan) Hashtbl.t;
  post_offsets : (string, int) Hashtbl.t;
  arrays : Ir.global list;
}

let ra_sym fname site = Printf.sprintf "__ra_%s_%d" fname site

let array_sym fname site = Printf.sprintf "__r2c_cs_%s_%d" fname site

(* The AVX array's layout, low to high, mirrors the stack image the batch
   stores produce: [alignment-pad decoys][post][RA][pre] (Figure 4). *)
let avx_array ~fname ~site ~pad_syms ~post_syms ~pre_syms =
  let item (s, o) = Ir.Sym_addr_off (s, o) in
  let items =
    List.map item pad_syms @ List.map item post_syms
    @ [ Ir.Sym_addr_off (ra_sym fname site, 0) ]
    @ List.map item pre_syms
  in
  { Ir.gname = array_sym fname site; gsize = 8 * List.length items; ginit = items }

let build ~rng ~cfg ~pool (p : Ir.program) =
  let plans = Hashtbl.create 256 in
  let post_offsets = Hashtbl.create 64 in
  let arrays = ref [] in
  (* Callee side first: every compiled function picks its post offset once
     (property B depends on this being static). *)
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace post_offsets f.name
        (Rng.int_in_range rng ~lo:1 ~hi:cfg.Dconfig.max_post))
    p.funcs;
  let plan_site fname site (callee : Ir.callee) =
    let protect =
      match callee with
      | Ir.Direct _ | Ir.Indirect _ -> true
      | Ir.Builtin _ -> cfg.Dconfig.to_builtins
    in
    if protect then begin
      let post_count =
        match callee with
        | Ir.Direct callee_name -> Hashtbl.find post_offsets callee_name
        | Ir.Indirect _ | Ir.Builtin _ ->
            (* No compile-time synchronisation is possible: pure decoys
               (Section 5.1). *)
            Rng.int_in_range rng ~lo:1 ~hi:cfg.Dconfig.max_post
      in
      let pre_count =
        let n = max 0 (cfg.Dconfig.total - post_count) in
        (* Keep the stack 16-byte aligned: even pre count (Section 5.1). *)
        if n land 1 = 1 then n + 1 else n
      in
      (* One atomic draw per call site keeps the whole set distinct —
         mimicry property A spans pre, post and padding together. *)
      let pad_count =
        let chunk =
          match cfg.Dconfig.setup with
          | Dconfig.Push | Dconfig.Naive -> 1
          | Dconfig.Sse -> 2
          | Dconfig.Avx -> 4
          | Dconfig.Avx512 -> 8
        in
        let w = pre_count + 1 + post_count in
        (chunk - (w mod chunk)) mod chunk
      in
      let drawn = Boobytrap.pick rng pool ~n:(pre_count + post_count + pad_count) in
      let rec split n = function
        | rest when n = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: rest ->
            let a, b = split (n - 1) rest in
            (x :: a, b)
      in
      let pre_syms, rest = split pre_count drawn in
      let post_syms, pad_syms = split post_count rest in
      let vector_setup kind =
        arrays := avx_array ~fname ~site ~pad_syms ~post_syms ~pre_syms :: !arrays;
        (kind, Some (array_sym fname site), pad_count)
      in
      let setup, array_global, avx_pad =
        match cfg.Dconfig.setup with
        | Dconfig.Push | Dconfig.Naive -> (Opts.Push_setup, None, 0)
        | Dconfig.Sse -> vector_setup Opts.Sse_setup
        | Dconfig.Avx -> vector_setup Opts.Avx_setup
        | Dconfig.Avx512 -> vector_setup Opts.Avx512_setup
      in
      let setup =
        match cfg.Dconfig.setup with Dconfig.Naive -> Opts.Push_naive | _ -> setup
      in
      let dummy_sym =
        match cfg.Dconfig.setup with
        | Dconfig.Naive -> Some (List.hd (Boobytrap.pick rng pool ~n:1))
        | Dconfig.Push | Dconfig.Sse | Dconfig.Avx | Dconfig.Avx512 -> None
      in
      (* Section 7.3: remember one random pre-BTRA to re-verify after the
         call returns. The stored index is the stack-slot offset from rsp
         at return time: the push sequence lays pre_syms highest-first,
         the vector batch lowest-first. *)
      let check_sym =
        if cfg.Dconfig.check_after_return && pre_count > 0 then begin
          let k = Rng.int rng pre_count in
          let slot =
            match cfg.Dconfig.setup with
            | Dconfig.Push | Dconfig.Naive -> pre_count - 1 - k
            | Dconfig.Sse | Dconfig.Avx | Dconfig.Avx512 -> k
          in
          Some (slot, List.nth pre_syms k)
        end
        else None
      in
      Hashtbl.replace plans (fname, site)
        { Opts.pre_syms; post_syms; setup; array_global; avx_pad; dummy_sym; check_sym }
    end
  in
  (* Walk call sites in emission order: blocks in order, instructions in
     order. *)
  List.iter
    (fun (f : Ir.func) ->
      let site = ref 0 in
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (fun instr ->
              match instr with
              | Ir.Call (_, callee, _) ->
                  plan_site f.name !site callee;
                  incr site
              | Ir.Mov _ | Ir.Binop _ | Ir.Cmp _ | Ir.Load _ | Ir.Load8 _
              | Ir.Store _ | Ir.Store8 _ | Ir.Slot_addr _ -> ())
            b.body)
        f.blocks)
    p.funcs;
  { plans; post_offsets; arrays = List.rev !arrays }

let plan t ~fname ~site = Hashtbl.find_opt t.plans (fname, site)

let post_offset t ~fname =
  match Hashtbl.find_opt t.post_offsets fname with Some n -> n | None -> 0
