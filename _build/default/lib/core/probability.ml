let guess_return_address ~btras =
  assert (btras >= 0);
  1.0 /. float_of_int (btras + 1)

let guess_n_return_addresses ~btras ~n =
  assert (n >= 0);
  guess_return_address ~btras ** float_of_int n

let pick_benign_heap_pointer ~benign ~btdps =
  assert (benign >= 0 && btdps >= 0 && benign + btdps > 0);
  float_of_int benign /. float_of_int (benign + btdps)

let expected_btdps_in_leak ~min_per_func ~max_per_func ~frames =
  assert (min_per_func <= max_per_func);
  float_of_int (min_per_func + max_per_func) /. 2.0 *. float_of_int frames

let detection_probability ~success_p ~attempts =
  assert (success_p >= 0.0 && success_p <= 1.0 && attempts >= 0);
  1.0 -. (success_p ** float_of_int attempts)
