lib/core/dconfig.ml: List Printf String
