lib/core/probability.mli:
