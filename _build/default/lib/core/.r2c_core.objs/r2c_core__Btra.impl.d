lib/core/btra.ml: Boobytrap Dconfig Hashtbl Ir List Printf R2c_compiler R2c_util
