lib/core/pipeline.mli: Dconfig Ir R2c_compiler R2c_machine
