lib/core/dconfig.mli:
