lib/core/btdp.mli: Dconfig Ir R2c_util
