lib/core/pipeline.ml: Array Boobytrap Btdp Btra Char Dconfig Hashtbl Ir List Logs Printf R2c_compiler R2c_machine R2c_util String
