lib/core/boobytrap.mli: R2c_compiler R2c_util
