lib/core/btra.mli: Boobytrap Dconfig Hashtbl Ir R2c_compiler R2c_util
