lib/core/boobytrap.ml: Array Hashtbl Insn List Printf R2c_compiler R2c_machine R2c_util
