lib/core/probability.ml:
