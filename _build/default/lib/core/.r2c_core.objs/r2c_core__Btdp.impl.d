lib/core/btdp.ml: Array Builder Char Dconfig Ir List Printf R2c_util String
