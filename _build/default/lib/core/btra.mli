(** Booby-trapped return address planning (Sections 4.1 and 5.1).

    Walks every call site of the program (in the same order the emitter
    enumerates them) and produces:

    - a per-function post-offset (the callee-chosen number of BTRAs after
      the return address, Figure 3 step 4);
    - a per-call-site plan: pre/post BTRA target sets drawn from the
      booby-trap pool with reuse avoidance, the setup flavour, and — for
      the AVX2 setup — the call-site-specific address array of Figure 4
      synthesized as a data global.

    Mimicry properties of Section 4.1 hold by construction: each target is
    used at most once within a site (property A), plans are fixed per site
    (property B), and sets are drawn independently per site with usage
    balancing (property C). *)

type t = {
  plans : (string * int, R2c_compiler.Opts.callsite_plan) Hashtbl.t;
      (** keyed by (function, site index) *)
  post_offsets : (string, int) Hashtbl.t;
  arrays : Ir.global list;  (** AVX call-site arrays, for [extra_globals] *)
}

(** [build ~rng ~cfg ~pool program] — plan every call site of [program]. *)
val build :
  rng:R2c_util.Rng.t -> cfg:Dconfig.btra -> pool:Boobytrap.pool -> Ir.program -> t

(** [plan t ~fname ~site] — lookup for {!R2c_compiler.Opts.t.callsite_btra}. *)
val plan : t -> fname:string -> site:int -> R2c_compiler.Opts.callsite_plan option

(** [post_offset t ~fname] — 0 when the function is unknown. *)
val post_offset : t -> fname:string -> int
