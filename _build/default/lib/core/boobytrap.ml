module Rng = R2c_util.Rng
module Opts = R2c_compiler.Opts
open R2c_machine

type target = string * int

let generate rng ~count =
  let funcs = ref [] in
  let targets = ref [] in
  for i = 0 to count - 1 do
    let name = Printf.sprintf "__bt_%d" i in
    (* A run of single-byte NOPs sliding into traps: any entry offset within
       the NOP run behaves like a plausible code address until used. *)
    let nops = Rng.int_in_range rng ~lo:2 ~hi:8 in
    let insns = List.init nops (fun _ -> Insn.Nop 1) @ [ Insn.Trap; Insn.Trap ] in
    funcs := { Opts.rname = name; rinsns = insns; rbooby_trap = true } :: !funcs;
    for k = 0 to nops do
      targets := (name, k) :: !targets
    done
  done;
  (List.rev !funcs, Array.of_list (List.rev !targets))

(* Usage-balanced sampling in O(1) per draw: targets live in buckets by
   usage count; a draw takes a random element of the lowest non-empty
   bucket and promotes it. Whole-program instrumentation visits hundreds of
   thousands of call sites, so this path must be cheap. *)

type vec = { mutable data : int array; mutable len : int }

let vec_create () = { data = Array.make 8 0; len = 0 }

let vec_push v x =
  if v.len = Array.length v.data then begin
    let d = Array.make (2 * v.len) 0 in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let vec_swap_remove v i =
  let x = v.data.(i) in
  v.data.(i) <- v.data.(v.len - 1);
  v.len <- v.len - 1;
  x

type pool = {
  targets : target array;
  usage : int array;
  mutable buckets : vec array;  (* usage -> indices *)
  mutable min_usage : int;
}

let pool_of_targets targets =
  let n = Array.length targets in
  let b0 = vec_create () in
  for i = 0 to n - 1 do
    vec_push b0 i
  done;
  { targets; usage = Array.make n 0; buckets = [| b0 |]; min_usage = 0 }

let ensure_bucket pool u =
  if u >= Array.length pool.buckets then begin
    let b = Array.init (u + 4) (fun i ->
        if i < Array.length pool.buckets then pool.buckets.(i) else vec_create ())
    in
    pool.buckets <- b
  end

let draw rng pool =
  while pool.buckets.(pool.min_usage).len = 0 do
    pool.min_usage <- pool.min_usage + 1;
    ensure_bucket pool pool.min_usage
  done;
  let b = pool.buckets.(pool.min_usage) in
  let i = vec_swap_remove b (Rng.int rng b.len) in
  let u = pool.usage.(i) + 1 in
  pool.usage.(i) <- u;
  ensure_bucket pool u;
  vec_push pool.buckets.(u) i;
  i

let pick rng pool ~n =
  let m = Array.length pool.targets in
  if n > m then invalid_arg "Boobytrap.pick: pool too small";
  (* Distinctness within one call site (mimicry property A): retry the rare
     duplicate draws that happen when a bucket drains mid-pick. *)
  let chosen = Hashtbl.create 16 in
  let rec take k acc =
    if k = 0 then List.rev acc
    else begin
      let i = draw rng pool in
      if Hashtbl.mem chosen i then take k acc
      else begin
        Hashtbl.replace chosen i ();
        take (k - 1) (pool.targets.(i) :: acc)
      end
    end
  in
  take n []
