(** R2C diversity configuration.

    Every knob of Sections 4 and 5, plus the component-isolating presets
    used by the evaluation (Section 6.2.1–6.2.3): the paper measures Push,
    AVX, BTDP, Prolog and Layout in isolation and everything together as
    "full R2C". *)

type btra_setup =
  | Push
  | Naive  (** decoy-only pre-push: the race-window scheme of Section 5.1 —
               provided to demonstrate why R2C rejects it *)
  | Sse  (** 16-byte batches (Section 7.1 fallback) *)
  | Avx
  | Avx512  (** 64-byte batches (Section 7.1: half the moves) *)

type btra = {
  total : int;  (** BTRAs per call site (paper evaluates 10) *)
  setup : btra_setup;
  to_builtins : bool;
      (** also booby-trap call sites into unprotected library code — the
          paper's worst-case measurement configuration (Section 6.2) *)
  max_post : int;  (** upper bound on the callee-chosen post offset *)
  check_after_return : bool;
      (** Section 7.3's hardening: verify a random pre-BTRA after each
          return; corruption (an attacker probing return-address
          candidates) trips a booby trap *)
}

type btdp = {
  min_per_func : int;
  max_per_func : int;  (** paper evaluates 0..5 *)
  array_size : int;  (** pointers in the heap-allocated BTDP array *)
  guard_pages : int;  (** pages kept and read-protected *)
  alloc_rounds : int;  (** pages allocated before freeing all but the kept *)
  decoys : int;  (** extra BTDPs placed (only) in the data section, Figure 5 *)
  skip_frameless : bool;
      (** omit instrumentation for functions without stack writes
          (Section 5.2's optimization) *)
}

type t = {
  btra : btra option;
  btdp : btdp option;
  nops : (int * int) option;  (** NOPs per call site, inclusive range *)
  prolog_traps : (int * int) option;  (** traps per prologue *)
  shuffle_functions : bool;
  shuffle_globals : bool;
  global_padding_max : int;  (** random padding after each global, bytes *)
  shuffle_stack_slots : bool;
  slot_padding_max : int;
  randomize_regalloc : bool;
  oia : bool;  (** offset-invariant addressing; forced on when [btra] set *)
  xom : bool;  (** execute-only text (Section 3's assumption) *)
  aslr : bool;
  booby_trap_funcs : int;  (** booby-trap functions scattered in text *)
}

(** No protection at all — the paper's measurement baseline. *)
val baseline : t

(** Everything on (Figure 6's configuration): BTRAs with the given setup
    (default [Avx]) and 10 per call site including library call sites,
    0-5 BTDPs per function, 1-9 NOPs, 1-5 prolog traps, all shuffles, XOM,
    ASLR. *)
val full : ?setup:btra_setup -> unit -> t

(** Component isolations of Table 1. *)

val btra_push_only : t
val btra_avx_only : t
val btra_sse_only : t
val btra_avx512_only : t

(** Full R2C plus the Section 7.3 BTRA consistency checks. *)
val full_checked : t
val btdp_only : t
val prolog_only : t
val layout_only : t

(** Offset-invariant addressing alone (Section 6.2.1's 0.79% figure). *)
val oia_only : t

val describe : t -> string
