module Rng = R2c_util.Rng
module B = Builder

type t = {
  ctor : Ir.func;
  globals : Ir.global list;
  array_sym : string;
  cfg : Dconfig.btdp;
  seed : int;
}

let ctor_name = "__r2c_btdp_init"

let g_tmp = "__r2c_btdp_tmp"
let g_kept = "__r2c_btdp_kept"
let g_keep = "__r2c_btdp_keep"
let g_pick = "__r2c_btdp_pick"
let g_offs = "__r2c_btdp_offs"
let g_arrp = "__r2c_btdp_arrp"

let decoy_name d = Printf.sprintf "__r2c_btdp_decoy_%d" d

(* A counted loop: body receives the counter value as an operand. *)
let counted_loop fb ~bound body =
  let ctr = B.slot fb 8 in
  let ctr_addr = B.slot_addr fb ctr in
  B.store fb ctr_addr 0 (Ir.Const 0);
  let header = B.new_block fb and bodyl = B.new_block fb and fin = B.new_block fb in
  B.br fb header;
  B.switch_to fb header;
  let i = B.load fb ctr_addr 0 in
  let c = B.cmp fb Ir.Lt i (Ir.Const bound) in
  B.cond_br fb c bodyl fin;
  B.switch_to fb bodyl;
  let i' = B.load fb ctr_addr 0 in
  body i';
  let inext = B.binop fb Ir.Add i' (Ir.Const 1) in
  B.store fb ctr_addr 0 inext;
  B.br fb header;
  B.switch_to fb fin

let build ~rng ~cfg ~seed =
  let ar = cfg.Dconfig.alloc_rounds in
  let gp = cfg.Dconfig.guard_pages in
  let asz = cfg.Dconfig.array_size in
  assert (gp <= ar && gp > 0 && asz > 0);
  (* Compile-time random choices. *)
  let keep_mask = Array.make ar 0 in
  let kept_indices =
    Rng.sample_without_replacement rng ~k:gp (Array.init ar (fun i -> i))
  in
  List.iter (fun i -> keep_mask.(i) <- 1) kept_indices;
  let picks = Array.init asz (fun _ -> Rng.int rng gp) in
  (* Array offsets are 8-aligned; decoys use offsets that are 4 mod 8, so a
     decoy value never coincides with an array value (Figure 5's "never
     occur on the stack"). *)
  let offs = Array.init asz (fun _ -> Rng.int rng 512 * 8) in
  let decoys =
    List.init cfg.Dconfig.decoys (fun d ->
        (decoy_name d, Rng.int rng gp, (Rng.int rng 511 * 8) + 4))
  in
  let globals =
    [
      { Ir.gname = g_tmp; gsize = 8 * ar; ginit = [] };
      { Ir.gname = g_kept; gsize = 8 * gp; ginit = [] };
      {
        Ir.gname = g_keep;
        gsize = ar;
        ginit = [ Ir.Str (String.init ar (fun i -> Char.chr keep_mask.(i))) ];
      };
      {
        Ir.gname = g_pick;
        gsize = 8 * asz;
        ginit = Array.to_list (Array.map (fun v -> Ir.Word v) picks);
      };
      {
        Ir.gname = g_offs;
        gsize = 8 * asz;
        ginit = Array.to_list (Array.map (fun v -> Ir.Word v) offs);
      };
      { Ir.gname = g_arrp; gsize = 8; ginit = [] };
    ]
    @ List.map (fun (name, _, _) -> { Ir.gname = name; gsize = 8; ginit = [] }) decoys
  in
  (* The constructor. *)
  let fb = B.func ctor_name ~nparams:0 in
  (* Phase 1: allocate all chunks. *)
  counted_loop fb ~bound:ar (fun i ->
      let p = B.call fb (Ir.Builtin "malloc_pages") [ Ir.Const 1 ] in
      let off = B.binop fb Ir.Mul i (Ir.Const 8) in
      let slot = B.binop fb Ir.Add (Ir.Global g_tmp) off in
      B.store fb slot 0 p);
  (* Phase 2: keep the chosen subset, free the rest (this is what scatters
     the survivors across the heap). *)
  let kept_ctr = B.slot fb 8 in
  let kept_ctr_addr = B.slot_addr fb kept_ctr in
  B.store fb kept_ctr_addr 0 (Ir.Const 0);
  counted_loop fb ~bound:ar (fun i ->
      let keep_addr = B.binop fb Ir.Add (Ir.Global g_keep) i in
      let keep = B.load8 fb keep_addr 0 in
      let off = B.binop fb Ir.Mul i (Ir.Const 8) in
      let tmp_slot = B.binop fb Ir.Add (Ir.Global g_tmp) off in
      let chunk = B.load fb tmp_slot 0 in
      let yes = B.new_block fb and no = B.new_block fb and join = B.new_block fb in
      B.cond_br fb keep yes no;
      B.switch_to fb yes;
      let j = B.load fb kept_ctr_addr 0 in
      let joff = B.binop fb Ir.Mul j (Ir.Const 8) in
      let kept_slot = B.binop fb Ir.Add (Ir.Global g_kept) joff in
      B.store fb kept_slot 0 chunk;
      let j' = B.binop fb Ir.Add j (Ir.Const 1) in
      B.store fb kept_ctr_addr 0 j';
      B.br fb join;
      B.switch_to fb no;
      B.call_void fb (Ir.Builtin "free") [ chunk ];
      B.br fb join;
      B.switch_to fb join);
  (* Phase 3: the pointer array lives on the heap; only its address goes to
     the data section. *)
  let arr = B.call fb (Ir.Builtin "malloc") [ Ir.Const (8 * asz) ] in
  let arr_slot = B.slot fb 8 in
  let arr_slot_addr = B.slot_addr fb arr_slot in
  B.store fb arr_slot_addr 0 arr;
  counted_loop fb ~bound:asz (fun k ->
      let koff = B.binop fb Ir.Mul k (Ir.Const 8) in
      let pick_slot = B.binop fb Ir.Add (Ir.Global g_pick) koff in
      let pi = B.load fb pick_slot 0 in
      let pioff = B.binop fb Ir.Mul pi (Ir.Const 8) in
      let kept_slot = B.binop fb Ir.Add (Ir.Global g_kept) pioff in
      let page = B.load fb kept_slot 0 in
      let off_slot = B.binop fb Ir.Add (Ir.Global g_offs) koff in
      let off = B.load fb off_slot 0 in
      let ptr = B.binop fb Ir.Add page off in
      let a = B.load fb arr_slot_addr 0 in
      let dst = B.binop fb Ir.Add a koff in
      B.store fb dst 0 ptr);
  let a_final = B.load fb arr_slot_addr 0 in
  B.store fb (Ir.Global g_arrp) 0 a_final;
  (* Phase 4: decoy BTDPs for the data section only. *)
  List.iter
    (fun (name, page_idx, off) ->
      let page = B.load fb (Ir.Global g_kept) (8 * page_idx) in
      let v = B.binop fb Ir.Add page (Ir.Const off) in
      B.store fb (Ir.Global name) 0 v)
    decoys;
  (* Phase 5: arm the guard pages. *)
  counted_loop fb ~bound:gp (fun g ->
      let goff = B.binop fb Ir.Mul g (Ir.Const 8) in
      let kept_slot = B.binop fb Ir.Add (Ir.Global g_kept) goff in
      let page = B.load fb kept_slot 0 in
      B.call_void fb (Ir.Builtin "mprotect_noread") [ page ]);
  B.ret fb None;
  { ctor = B.finish fb; globals; array_sym = g_arrp; cfg; seed }

(* Deterministic per-function randomness, independent of query order. *)
let hash_string s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3fffffff) s;
  !h

let indices t ~fname ~writes_frame =
  if t.cfg.Dconfig.skip_frameless && not writes_frame then []
  else begin
    let rng = Rng.create (t.seed lxor (hash_string fname * 2654435761)) in
    let count =
      Rng.int_in_range rng ~lo:t.cfg.Dconfig.min_per_func ~hi:t.cfg.Dconfig.max_per_func
    in
    let count = min count t.cfg.Dconfig.array_size in
    Rng.sample_without_replacement rng ~k:count
      (Array.init t.cfg.Dconfig.array_size (fun i -> i))
  end
