(** Analytic security bounds of Section 7.2.

    The Monte-Carlo attack experiments (bench `security`) cross-check these
    closed forms. *)

(** [guess_return_address ~btras] — probability of picking the real return
    address among [btras] booby-trapped ones: 1/(R+1) (Section 7.2.1). *)
val guess_return_address : btras:int -> float

(** [guess_n_return_addresses ~btras ~n] — all [n] picks correct:
    (1/(R+1))^n; the paper's example is n=4, R=10 ~ 0.00007. *)
val guess_n_return_addresses : btras:int -> n:int -> float

(** [pick_benign_heap_pointer ~benign ~btdps] — H/(H+B) (Section 7.2.3). *)
val pick_benign_heap_pointer : benign:int -> btdps:int -> float

(** [expected_btdps_in_leak ~min_per_func ~max_per_func ~frames] — E(B)*S
    for a leak of [frames] stack frames (Section 7.2.3). *)
val expected_btdps_in_leak : min_per_func:int -> max_per_func:int -> frames:int -> float

(** [detection_probability ~success_p ~attempts] — probability that at
    least one of [attempts] independent probes with per-probe success
    [success_p] trips a booby trap, i.e. 1 - success_p^attempts. *)
val detection_probability : success_p:float -> attempts:int -> float
