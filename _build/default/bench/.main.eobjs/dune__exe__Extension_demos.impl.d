bench/extension_demos.ml: List Printf R2c_attacks R2c_core R2c_defenses R2c_util R2c_workloads
