bench/main.mli:
