(* The Section 5.1 / 7.3 extension experiments, batched for the bench run:

   - the race-window attack against the rejected naive decoy scheme and
     against R2C's race-free setup;
   - the RA-zeroing side channel against plain R2C (the admitted remaining
     attack surface), against the consistency-check hardening, and against
     load-time re-randomization;
   - the MVEE divergence detector over differently-seeded variants. *)

module Defenses = R2c_defenses.Defenses
module Mvee = R2c_defenses.Mvee
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp

let attach (d : Defenses.t) ~seed =
  Oracle.attach ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed)

let battery name runs =
  let reports = List.map (fun f -> f ()) runs in
  let n = List.length reports in
  let s = List.length (List.filter (fun r -> r.Report.success) reports) in
  let d = List.length (List.filter (fun r -> r.Report.detected) reports) in
  Printf.printf "%-42s %d/%d succeeded, %d/%d detected\n%!" name s n d n

let run () =
  print_endline "\n== Race window (Section 5.1's design rationale) ==";
  battery "race vs naive decoys (kR^X-style)"
    (List.map
       (fun seed () -> R2c_attacks.Race.run ~target:(attach Defenses.r2c_naive ~seed))
       [ 1; 2; 3; 4 ]);
  battery "race vs R2C (pre-written RA)"
    (List.map
       (fun seed () -> R2c_attacks.Race.run ~target:(attach Defenses.r2c ~seed))
       [ 1; 2; 3; 4 ]);
  print_endline "\n== RA-zeroing side channel (Section 7.3) ==";
  battery "zeroing vs R2C (remaining surface)"
    (List.map
       (fun seed () -> R2c_attacks.Ra_zeroing.run ~target:(attach Defenses.r2c_nopie ~seed) ())
       [ 1; 2; 3; 4 ]);
  battery "zeroing vs R2C + consistency checks"
    (List.map
       (fun seed () ->
         R2c_attacks.Ra_zeroing.run ~target:(attach Defenses.r2c_checked_nopie ~seed) ())
       [ 1; 2; 3; 4; 5; 6 ]);
  battery "zeroing vs R2C + load-time re-randomization"
    (List.map
       (fun seed () ->
         let d = Defenses.r2c_rerand in
         let counter = ref 0 in
         let relink () =
           incr counter;
           Defenses.build_vulnapp d ~seed:(seed + 900 + !counter)
         in
         let target =
           Oracle.attach ~relink ~break_sym:Vulnapp.break_symbol
             (Defenses.build_vulnapp d ~seed)
         in
         R2c_attacks.Ra_zeroing.run ~target ())
       [ 1; 2; 3 ]);
  print_endline "\n== Backward-edge CFI (Section 8.2) ==";
  let cfi_scenario d seed =
    let reference =
      Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 700))
    in
    (reference, attach d ~seed)
  in
  battery "ROP vs shadow stack"
    (List.map
       (fun seed () ->
         let reference, target = cfi_scenario Defenses.cfi seed in
         R2c_attacks.Rop.run ~reference ~target)
       [ 1; 2; 3 ]);
  battery "AOCR vs shadow stack (forward edge unchecked)"
    (List.map
       (fun seed () ->
         let reference, target = cfi_scenario Defenses.cfi seed in
         R2c_attacks.Aocr.run ~rng:(R2c_util.Rng.create (seed * 7)) ~reference ~target ())
       [ 1; 2; 3 ]);
  battery "AOCR vs R2C+CFI (orthogonal, composed)"
    (List.map
       (fun seed () ->
         let reference, target = cfi_scenario Defenses.r2c_cfi seed in
         R2c_attacks.Aocr.run ~rng:(R2c_util.Rng.create (seed * 7)) ~reference ~target ())
       [ 1; 2; 3 ]);
  print_endline "\n== Multi-variant execution (Section 7.3) ==";
  (* A layout-diversified-but-trapless build: the attacker owns variant 0
     via insider knowledge; the MVEE catches the exploit because variant 1
     reacts differently. *)
  let d = { Defenses.r2c with Defenses.cfg = R2c_core.Dconfig.layout_only } in
  let build ~seed = Defenses.build_vulnapp d ~seed in
  let benign = Mvee.run ~build ~seeds:[ 1; 2; 3 ] ~inputs:[ "ping"; "pong" ] in
  Printf.printf "benign traffic across 3 variants: %s\n" (Mvee.verdict_to_string benign);
  (* Craft the exploit against variant 1's exact layout. *)
  let v1 = build ~seed:1 in
  let reference = Reference.measure v1 in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol v1 in
  (match (Oracle.to_break target, Oracle.resume_to_break target) with
  | `Break, `Break -> (
      let _, values =
        Oracle.leak_stack target ~words:((reference.Reference.ra_off / 8) + 8)
      in
      match R2c_attacks.Rop.craft ~reference ~values with
      | None -> print_endline "no gadget in reference"
      | Some payload ->
          let verdict = Mvee.run ~build ~seeds:[ 1; 2 ] ~inputs:[ ""; payload ] in
          Printf.printf "variant-1-tailored exploit under the MVEE: %s\n"
            (Mvee.verdict_to_string verdict))
  | _ -> print_endline "victim never reached serving state")
