(* The paper's motivating attack, end to end: Address-Oblivious Code Reuse
   against a leakage-resilient, code-only diversification defense
   (Readactor model) — and the same attack against R2C.

     dune exec examples/aocr_attack.exe *)

module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp
module Rng = R2c_util.Rng

let scenario (d : Defenses.t) ~seed =
  let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 1000)) in
  let target =
    Oracle.attach ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed)
  in
  (reference, target)

let battle (d : Defenses.t) ~seed =
  Printf.printf "--- AOCR vs %s (%s) ---\n" d.Defenses.name d.Defenses.footnote;
  let reference, target = scenario d ~seed in
  let report = R2c_attacks.Aocr.run ~rng:(Rng.create (seed * 31)) ~reference ~target () in
  print_endline (Report.to_string report);
  (match Oracle.sensitive_log target with
  | [] -> print_endline "no privileged call was reached."
  | log ->
      List.iter
        (fun (rdi, _) ->
          Printf.printf "privileged exec fired with argument 0x%x%s\n" rdi
            (if rdi = Vulnapp.marker then "  <-- ATTACKER-CONTROLLED" else ""))
        log);
  print_newline ()

let () =
  print_endline "== AOCR: the attack the paper is built around ==\n";
  print_endline
    "The attacker holds a reference copy of the binary, a stack-leak\n\
     primitive (Malicious Thread Blocking), and arbitrary read/write.\n\
     AOCR never needs code addresses: it profiles the stack, follows a heap\n\
     pointer to the data section, corrupts the privileged function's default\n\
     parameter and redirects a service-table entry - whole-function reuse.\n";
  (* Code-only diversification does not stop it (the paper's thesis). *)
  battle Defenses.readactor ~seed:14;
  battle Defenses.tasr ~seed:16;
  (* R2C: stack slot shuffling + BTRAs break step A's profiling, BTDPs mine
     the heap-pointer cluster of step B, global shuffling breaks step C. *)
  List.iter (fun seed -> battle Defenses.r2c ~seed) [ 1; 2; 3 ]
