(* What the attacker actually sees: a side-by-side dump of the vulnerable
   server's leaked stack frame, baseline versus R2C. The baseline frame has
   one obvious return address and one obvious heap pointer; the R2C frame
   drowns them among booby-trapped return addresses and booby-trapped data
   pointers (the reflective camouflage of Figures 2 and 5). Also prints the
   serving-throughput cost of the camouflage.

     dune exec examples/webserver_camouflage.exe *)

module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Vulnapp = R2c_workloads.Vulnapp
module Webserver = R2c_workloads.Webserver
open R2c_machine

let dump_frame (d : Defenses.t) ~seed ~words =
  let img = Defenses.build_vulnapp d ~seed in
  let target = Oracle.attach ~break_sym:Vulnapp.break_symbol img in
  (match Oracle.to_break target with `Break -> () | `Done _ -> failwith "no break");
  (match Oracle.resume_to_break target with `Break -> () | `Done _ -> failwith "no break");
  let base, values = Oracle.leak_stack target ~words in
  let mem = target.Oracle.proc.Process.cpu.Cpu.mem in
  let guards = Mem.guard_page_addrs mem in
  Printf.printf "--- leaked frame under %s (rsp = 0x%x) ---\n" d.Defenses.name base;
  Array.iteri
    (fun i v ->
      let annotation =
        match Addr.region_of v with
        | Addr.Text -> (
            match Image.func_of_addr img v with
            | Some f when f.Image.is_booby_trap -> "code pointer  <- BOOBY TRAP (BTRA)"
            | Some f -> Printf.sprintf "code pointer into %s" f.Image.fname
            | None -> "code pointer (PLT)")
        | Addr.Heap ->
            if List.mem (Addr.page_base v) guards then
              "heap pointer  <- GUARD PAGE (BTDP)"
            else "heap pointer (benign)"
        | Addr.Data -> "data-section pointer"
        | Addr.Stack -> "stack pointer"
        | Addr.Unmapped_region -> ""
      in
      if annotation <> "" then
        Printf.printf "  rsp+%-4d %016x  %s\n" (8 * i) v annotation)
    values;
  print_newline ()

let () =
  print_endline "== Reflective camouflage, as seen from the attacker's leak ==\n";
  dump_frame Defenses.unprotected ~seed:4 ~words:40;
  dump_frame Defenses.r2c ~seed:4 ~words:40;
  print_endline
    "In the baseline frame the lone text-range word IS the return address and\n\
     the lone heap word IS the session pointer. Under R2C, picking either\n\
     means gambling against the booby traps.\n";
  (* The price: serving throughput. *)
  let requests = 300 in
  let program = Webserver.server `Nginx ~requests in
  let cycles img =
    let p = Process.start img in
    let main_addr = Image.symbol img "main" in
    (match Process.run_until p ~break:[ main_addr ] with
    | `Hit -> ()
    | `Done _ -> failwith "no main");
    let t0 = Process.cycles p in
    match Process.run p with
    | Process.Exited 0 -> Process.cycles p -. t0
    | o -> failwith (Process.outcome_to_string o)
  in
  let base = cycles (R2c_compiler.Driver.compile program) in
  let r2c = cycles (R2c_core.Pipeline.compile ~seed:4 (R2c_core.Dconfig.full ()) program) in
  Printf.printf "nginx-model throughput: %.1f -> %.1f requests/Mcycle (%.1f%% drop)\n"
    (Webserver.throughput_of_cycles ~requests base)
    (Webserver.throughput_of_cycles ~requests r2c)
    ((1.0 -. (base /. r2c)) *. 100.0)
