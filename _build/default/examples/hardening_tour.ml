(* The hardening tour: what each Section 7.3 / 8.2 extension buys, shown on
   one attack each.

     dune exec examples/hardening_tour.exe *)

module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Reference = R2c_attacks.Reference
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp

let attach (d : Defenses.t) ~seed =
  Oracle.attach ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed)

let show title (r : Report.t) =
  Printf.printf "%-46s %s%s\n" title
    (if r.Report.success then "ATTACKER WINS" else "defended")
    (if r.Report.detected then " + alarm raised" else "")

let () =
  print_endline "== What each hardening layer buys ==\n";
  print_endline "Attack: return-address zeroing (Section 7.3's side channel)\n";
  show "R2C, non-PIE worker pool"
    (R2c_attacks.Ra_zeroing.run ~target:(attach Defenses.r2c_nopie ~seed:5) ());
  show "  + BTRA consistency checks"
    (R2c_attacks.Ra_zeroing.run ~target:(attach Defenses.r2c_checked_nopie ~seed:5) ());
  (let d = Defenses.r2c_rerand in
   let counter = ref 0 in
   let relink () =
     incr counter;
     Defenses.build_vulnapp d ~seed:(600 + !counter)
   in
   let target =
     Oracle.attach ~relink ~break_sym:Vulnapp.break_symbol
       (Defenses.build_vulnapp d ~seed:5)
   in
   show "  + load-time re-randomization" (R2c_attacks.Ra_zeroing.run ~target ()));
  print_endline "\nAttack: classic ROP chain\n";
  let rop d seed =
    let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 800)) in
    R2c_attacks.Rop.run ~reference ~target:(attach d ~seed)
  in
  show "unprotected" (rop Defenses.unprotected 7);
  show "shadow-stack CFI alone" (rop Defenses.cfi 7);
  show "R2C alone" (rop Defenses.r2c 7);
  print_endline "\nAttack: AOCR (address-oblivious whole-function reuse)\n";
  let aocr d seed =
    let reference = Reference.measure (Defenses.build_vulnapp d ~seed:(seed + 800)) in
    R2c_attacks.Aocr.run
      ~rng:(R2c_util.Rng.create (seed * 13))
      ~reference ~target:(attach d ~seed) ()
  in
  show "shadow-stack CFI alone (forward edge open)" (aocr Defenses.cfi 9);
  show "R2C alone" (aocr Defenses.r2c 9);
  show "R2C + CFI (Section 8.2: orthogonal)" (aocr Defenses.r2c_cfi 9);
  print_endline
    "\nEnforcement kills return corruption; camouflage kills the inference\n\
     steps enforcement cannot see. The paper's closing argument, executed."
