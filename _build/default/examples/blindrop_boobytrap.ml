(* The reactive component: Blind ROP against a worker-respawning non-PIE
   server. Against the unprotected build, stack reading plus a gadget sweep
   pops the privileged call after a few hundred probes. Against R2C, the
   very first probes land in booby-trap functions and the monitoring
   threshold ends the campaign (Section 4.1's deterrence).

     dune exec examples/blindrop_boobytrap.exe *)

module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Report = R2c_attacks.Report
module Vulnapp = R2c_workloads.Vulnapp

let campaign (d : Defenses.t) ~seed =
  Printf.printf "--- Blind ROP vs %s ---\n" d.Defenses.name;
  let target =
    Oracle.attach ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed)
  in
  let r = R2c_attacks.Blindrop.run ~probe_budget:20_000 ~target () in
  print_endline (Report.to_string r);
  Printf.printf "worker crashes observed by the operator: %d\n" (Oracle.crashes target);
  Printf.printf "booby-trap/guard-page alarms raised: %d\n\n" (Oracle.detections target)

let () =
  print_endline "== Blind ROP vs booby traps ==\n";
  campaign Defenses.unprotected ~seed:20;
  let r2c_nopie =
    { Defenses.r2c with Defenses.cfg = { (R2c_core.Dconfig.full ()) with aslr = false } }
  in
  campaign r2c_nopie ~seed:20;
  print_endline
    "The unprotected server dies a thousand deaths and then hands over the\n\
     privileged call. The R2C server dies a handful of times - but one of\n\
     those deaths is a booby trap, and a booby trap is a fire alarm."
