(* Quickstart: write a small program against the public API, compile it
   twice — baseline and full R2C — and see that behaviour is identical
   while the binary is diversified.

     dune exec examples/quickstart.exe *)

module B = Builder
module Dconfig = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
open R2c_machine

(* A little program: compute the first 10 triangular numbers through a
   helper function and print their sum. *)
let program =
  let tri = B.func "triangle" ~nparams:1 in
  let n = B.param 0 in
  let n1 = B.binop tri Ir.Add n (Ir.Const 1) in
  let prod = B.binop tri Ir.Mul n n1 in
  let half = B.binop tri Ir.Div prod (Ir.Const 2) in
  B.ret tri (Some half);
  let main = B.func "main" ~nparams:0 in
  let acc = B.slot main 8 in
  B.store main (B.slot_addr main acc) 0 (Ir.Const 0);
  R2c_workloads.Wb.for_ main ~from:(Ir.Const 1) ~below:(Ir.Const 11) (fun i ->
      let t = B.call main (Ir.Direct "triangle") [ i ] in
      let cur = B.load main (B.slot_addr main acc) 0 in
      B.store main (B.slot_addr main acc) 0 (B.binop main Ir.Add cur t));
  B.call_void main (Ir.Builtin "print_int") [ B.load main (B.slot_addr main acc) 0 ];
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main" [ B.finish tri; B.finish main ] []

let run img =
  let p = Process.start img in
  match Process.run p with
  | Process.Exited 0 -> (Process.output p, Process.cycles p)
  | o -> failwith (Process.outcome_to_string o)

let () =
  print_endline "== R2C quickstart ==\n";
  (* 1. Baseline compile & run. *)
  let baseline = R2c_compiler.Driver.compile program in
  let base_out, base_cycles = run baseline in
  Printf.printf "baseline output: %s  (%.0f cycles)\n" (String.trim base_out) base_cycles;
  (* 2. Full R2C, two different seeds. *)
  let cfg = Dconfig.full () in
  List.iter
    (fun seed ->
      let img = Pipeline.compile ~seed cfg program in
      let out, cycles = run img in
      assert (out = base_out);
      Printf.printf
        "R2C seed %d: same output, %.0f cycles (%+.1f%%), main at 0x%x, %d booby traps\n"
        seed cycles
        ((cycles /. base_cycles -. 1.0) *. 100.0)
        (Image.symbol img "main")
        (List.length (List.filter (fun f -> f.Image.is_booby_trap) img.Image.funcs)))
    [ 1; 2; 3 ];
  print_endline "\nSame behaviour, different binary every time — that is the point.";
  (* 3. Show a slice of the diversified call-site code. *)
  let img = Pipeline.compile ~seed:1 cfg program in
  let main_addr = Image.symbol img "main" in
  Printf.printf "\nfirst instructions of diversified main (0x%x):\n" main_addr;
  let rec dump addr n =
    if n > 0 then
      match Image.code_at img addr with
      | Some (insn, len) ->
          Printf.printf "  %x: %s\n" addr (Insn.to_string insn);
          dump (addr + len) (n - 1)
      | None -> ()
  in
  dump main_addr 12
