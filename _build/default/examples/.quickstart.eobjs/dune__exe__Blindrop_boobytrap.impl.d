examples/blindrop_boobytrap.ml: Printf R2c_attacks R2c_core R2c_defenses R2c_workloads
