examples/quickstart.mli:
