examples/webserver_camouflage.ml: Addr Array Cpu Image List Mem Printf Process R2c_attacks R2c_compiler R2c_core R2c_defenses R2c_machine R2c_workloads
