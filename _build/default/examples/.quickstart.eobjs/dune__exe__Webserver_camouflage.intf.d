examples/webserver_camouflage.mli:
