examples/blindrop_boobytrap.mli:
