examples/hardening_tour.mli:
