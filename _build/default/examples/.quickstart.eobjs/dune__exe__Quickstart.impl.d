examples/quickstart.ml: Builder Image Insn Ir List Printf Process R2c_compiler R2c_core R2c_machine R2c_workloads String
