examples/aocr_attack.mli:
