open R2c_machine
module Opts = R2c_compiler.Opts
module Driver = R2c_compiler.Driver
module Regalloc = R2c_compiler.Regalloc

let interp_ref p =
  match Interp.run p with
  | Ok r -> r
  | Error e -> Alcotest.failf "reference interp failed: %s" (Interp.error_to_string e)

let run_compiled ?(opts = Opts.default) p =
  let img = Driver.compile ~opts p in
  let proc = Process.start ~strict_align:true img in
  let outcome = Process.run proc in
  (outcome, proc)

(* The central differential check: compiled behaviour == interpreted
   behaviour, the analogue of the paper's browser-test validation. *)
let check_differential ?(opts = Opts.default) name p =
  let r = interp_ref p in
  let outcome, proc = run_compiled ~opts p in
  (match outcome with
  | Process.Exited code -> Alcotest.(check int) (name ^ ": exit code") r.Interp.exit_code code
  | other -> Alcotest.failf "%s: compiled run %s" name (Process.outcome_to_string other));
  Alcotest.(check string) (name ^ ": output") r.Interp.output (Process.output proc)

let test_differential_baseline () =
  List.iter (fun (name, p) -> check_differential name p) Samples.all

let test_differential_xom () =
  let opts = { Opts.default with text_perm = Perm.xo } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_differential_aslr () =
  let opts =
    {
      Opts.default with
      text_slide = 0x7000;
      data_slide = 0x3000;
      heap_slide = 0x11000;
    }
  in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_differential_oia () =
  (* Offset-invariant addressing alone (Section 6.2.1's isolation). *)
  let opts = { Opts.default with oia = true } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_differential_small_pool () =
  (* Starve the register allocator: everything spills. *)
  let opts = { Opts.default with reg_pool = (fun ~fname:_ -> []) } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_differential_single_reg () =
  let opts = { Opts.default with reg_pool = (fun ~fname:_ -> [ Insn.R13 ]) } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_symbols_present () =
  let img = Driver.compile (Samples.fib_prog 5) in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " defined") true (Hashtbl.mem img.Image.symbols s))
    [ "main"; "fib"; "_start"; "malloc"; "print_int" ]

let test_functions_disjoint () =
  let img = Driver.compile Samples.indirect_prog in
  let funcs = img.Image.funcs in
  List.iter
    (fun (a : Image.func_info) ->
      List.iter
        (fun (b : Image.func_info) ->
          if a.fname <> b.fname then
            Alcotest.(check bool)
              (Printf.sprintf "%s and %s disjoint" a.fname b.fname)
              true
              (a.entry + a.code_len <= b.entry || b.entry + b.code_len <= a.entry))
        funcs)
    funcs

let test_text_in_region () =
  let img = Driver.compile (Samples.loop_prog 10) in
  Alcotest.(check bool) "text base" true (img.Image.text_base >= Addr.text_base);
  Alcotest.(check bool) "text end" true
    (img.Image.text_base + img.Image.text_len < Addr.text_limit);
  Array.iter
    (fun (addr, _, _) ->
      Alcotest.(check bool) "insn in text" true (Addr.region_of addr = Addr.Text))
    (Lazy.force img.Image.code_list)

let test_data_in_region () =
  let img = Driver.compile Samples.global_prog in
  List.iter
    (fun (addr, _) ->
      Alcotest.(check bool) "init word in data" true (Addr.region_of addr = Addr.Data))
    (Lazy.force img.Image.data_words)

let test_func_order_respected () =
  let order_seen = ref [] in
  let opts =
    {
      Opts.default with
      func_order =
        (fun names ->
          let sorted = List.sort compare names in
          order_seen := sorted;
          sorted);
    }
  in
  let img = Driver.compile ~opts Samples.indirect_prog in
  let entries =
    List.map (fun (f : Image.func_info) -> (f.entry, f.fname)) img.Image.funcs
  in
  let by_addr = List.sort compare entries in
  Alcotest.(check (list string)) "layout follows order" !order_seen (List.map snd by_addr)

let test_invalid_program_rejected () =
  let p =
    { Ir.funcs = []; globals = []; main = "main" }
  in
  match Driver.compile p with
  | exception Driver.Invalid_program _ -> ()
  | _ -> Alcotest.fail "expected Invalid_program"

let test_regalloc_intervals_cover_uses () =
  List.iter
    (fun (name, (p : Ir.program)) ->
      List.iter
        (fun (f : Ir.func) ->
          let ivals = Regalloc.intervals f in
          Array.iter
            (fun (lo, hi) ->
              Alcotest.(check bool) (name ^ ": interval sane") true (lo <= hi))
            ivals)
        p.funcs)
    Samples.all

let test_regalloc_no_conflicts () =
  (* Two variables with overlapping intervals must not share a register. *)
  List.iter
    (fun (_, (p : Ir.program)) ->
      List.iter
        (fun (f : Ir.func) ->
          let pool = Insn.[ RBX; R12; R13; R14; R15 ] in
          let res = Regalloc.allocate ~pool f in
          let ivals = Regalloc.intervals f in
          for a = 0 to f.nvars - 1 do
            for b = a + 1 to f.nvars - 1 do
              match (res.assign.(a), res.assign.(b)) with
              | Regalloc.In_reg ra, Regalloc.In_reg rb when ra = rb ->
                  let la, ha = ivals.(a) and lb, hb = ivals.(b) in
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: v%d v%d disjoint" f.name a b)
                    true
                    (ha < lb || hb < la)
              | _ -> ()
            done
          done)
        p.funcs)
    Samples.all

let test_prolog_trap_skipped () =
  (* Traps in the prologue must not fire on the legitimate path. *)
  let opts = { Opts.default with prolog_traps = (fun ~fname:_ -> 3) } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_slot_padding () =
  let opts = { Opts.default with slot_pad_bytes = (fun ~fname:_ -> 48) } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_slot_permutation_reversal () =
  (* Reversing all frame slots must preserve behaviour. *)
  let opts =
    {
      Opts.default with
      slot_perm = (fun ~fname:_ ~n -> Array.init n (fun i -> n - 1 - i));
    }
  in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_nop_insertion () =
  let opts =
    { Opts.default with nops_before_call = (fun ~fname:_ ~site -> [ 1; (site mod 9) + 1 ]) }
  in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let test_func_padding () =
  let opts = { Opts.default with func_pad = (fun ~fname:_ -> 32) } in
  List.iter (fun (name, p) -> check_differential ~opts name p) Samples.all

let suite =
  [
    ( "compiler",
      [
        Alcotest.test_case "differential baseline" `Quick test_differential_baseline;
        Alcotest.test_case "differential xom" `Quick test_differential_xom;
        Alcotest.test_case "differential aslr" `Quick test_differential_aslr;
        Alcotest.test_case "differential oia" `Quick test_differential_oia;
        Alcotest.test_case "differential no regs" `Quick test_differential_small_pool;
        Alcotest.test_case "differential one reg" `Quick test_differential_single_reg;
        Alcotest.test_case "symbols present" `Quick test_symbols_present;
        Alcotest.test_case "functions disjoint" `Quick test_functions_disjoint;
        Alcotest.test_case "text in region" `Quick test_text_in_region;
        Alcotest.test_case "data in region" `Quick test_data_in_region;
        Alcotest.test_case "func order respected" `Quick test_func_order_respected;
        Alcotest.test_case "invalid program rejected" `Quick test_invalid_program_rejected;
        Alcotest.test_case "intervals sane" `Quick test_regalloc_intervals_cover_uses;
        Alcotest.test_case "regalloc no conflicts" `Quick test_regalloc_no_conflicts;
        Alcotest.test_case "prolog traps skipped" `Quick test_prolog_trap_skipped;
        Alcotest.test_case "slot padding" `Quick test_slot_padding;
        Alcotest.test_case "slot permutation" `Quick test_slot_permutation_reversal;
        Alcotest.test_case "nop insertion" `Quick test_nop_insertion;
        Alcotest.test_case "function padding" `Quick test_func_padding;
      ] );
  ]
