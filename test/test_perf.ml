(* Differential tests for the two-tier interpreter dispatch: every
   program must produce bit-identical architectural state and counters
   under the reference (hash-probing) dispatch and the predecoded fast
   path. This is the OSR-style equivalence contract the fast path ships
   under — any divergence here is a fast-path bug by definition. *)

open R2c_machine
module D = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
module Gen = R2c_fuzz.Gen
module Corpus = R2c_fuzz.Corpus
module Opts = R2c_compiler.Opts
module Link = R2c_compiler.Link
module Asm = R2c_compiler.Asm

let fuel = 2_000_000

(* Everything the contract covers, folded into one comparable string.
   Cycles go through bits_of_float so "identical" means bit-identical,
   not approximately equal. *)
let fingerprint cpu result =
  Printf.sprintf "%s|exit:%d|cycles:%Lx|insns:%d|imiss:%d|iacc:%d|depth:%d|out:%s"
    (match result with
    | Cpu.Halted -> "halted"
    | Cpu.Fuel_exhausted -> "fuel"
    | Cpu.Faulted f -> "fault:" ^ Fault.to_string f)
    cpu.Cpu.exit_code
    (Int64.bits_of_float cpu.Cpu.cycles)
    cpu.Cpu.insns
    (Icache.misses cpu.Cpu.icache)
    (Icache.accesses cpu.Cpu.icache)
    cpu.Cpu.max_depth (Cpu.output cpu)

let check_both_tiers name img =
  let load () = Loader.load ~strict_align:true ~profile:Cost.epyc_rome img in
  let reference =
    let cpu = load () in
    fingerprint cpu (Cpu.run_reference cpu ~fuel)
  in
  let fast =
    let cpu = load () in
    fingerprint cpu (Cpu.run cpu ~fuel)
  in
  Alcotest.(check string) name reference fast

(* 25 generator-v2 programs at pinned seeds, each compiled under the full
   R2C config and the baseline (seed-diverse variants exercise BTRA
   sleds, booby traps, layout shuffling through both fetch tiers). *)
let test_generated_programs () =
  for i = 1 to 25 do
    let seed = 7001 + (137 * i) in
    let p = Gen.v2 ~seed () in
    check_both_tiers
      (Printf.sprintf "gen seed %d full" seed)
      (Pipeline.compile ~seed (D.full ()) p);
    if i mod 5 = 0 then
      check_both_tiers
        (Printf.sprintf "gen seed %d baseline" seed)
        (Pipeline.compile ~seed D.baseline p)
  done

(* Every committed fuzz reproducer replays through both tiers too.
   Vacuous while the corpus is empty; load-bearing the moment a
   divergence hunt lands a .r2c file. *)
let test_corpus_replay () =
  List.iter
    (fun path ->
      match Corpus.load path with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok p ->
          check_both_tiers (path ^ " full") (Pipeline.compile ~seed:11 (D.full ()) p);
          check_both_tiers (path ^ " baseline") (Pipeline.compile ~seed:11 D.baseline p))
    (Corpus.files ~dir:"corpus")

(* Fault equality: a faulting program must report the identical fault
   (class, address, counters at detonation) from both tiers. *)
let raw_image insns =
  let emitted = [ Asm.of_raw { Opts.rname = "main"; rinsns = insns; rbooby_trap = false } ] in
  Link.link ~opts:Opts.default ~main:"main" emitted []

let test_fault_equality () =
  check_both_tiers "div by zero"
    (raw_image
       Insn.[ Mov (Reg RAX, Imm (Abs 1)); Mov (Reg RBX, Imm (Abs 0)); Div (RAX, Reg RBX); Ret ]);
  check_both_tiers "wild store"
    (raw_image
       Insn.[ Mov (Reg RAX, Imm (Abs 0x666000)); Mov (Mem (mem ~base:RAX ()), Imm (Abs 1)); Ret ]);
  check_both_tiers "trap"
    (raw_image Insn.[ Trap ])

(* Fuel exhaustion must cut both tiers at the same instruction. *)
let test_fuel_equality () =
  let img =
    raw_image Insn.[ Binop (Add, RCX, Imm (Abs 1)); Jmp (TSym ("main", 0)) ]
  in
  let load () = Loader.load ~strict_align:true ~profile:Cost.epyc_rome img in
  let fp run =
    let cpu = load () in
    fingerprint cpu (run cpu ~fuel:997)
  in
  Alcotest.(check string) "fuel cut" (fp Cpu.run_reference) (fp Cpu.run)

let suite =
  [
    ( "perf",
      [
        Alcotest.test_case "25 pinned-seed programs, both tiers" `Quick test_generated_programs;
        Alcotest.test_case "corpus replay, both tiers" `Quick test_corpus_replay;
        Alcotest.test_case "fault equality" `Quick test_fault_equality;
        Alcotest.test_case "fuel-exhaustion equality" `Quick test_fuel_equality;
      ] );
  ]
