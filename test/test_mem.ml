open R2c_machine

let check_fault name expected f =
  match f () with
  | exception Fault.Fault fault ->
      Alcotest.(check string) name expected (Fault.to_string fault)
  | _ -> Alcotest.failf "%s: expected a fault" name

let test_map_rw () =
  let m = Mem.create () in
  Mem.map m 0x10000 8192 Perm.rw;
  Mem.write_u64 m 0x10008 0xdeadbeef;
  Alcotest.(check int) "round trip" 0xdeadbeef (Mem.read_u64 m 0x10008)

let test_zero_fill () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Alcotest.(check int) "zeroed" 0 (Mem.read_u64 m 0x10000)

let test_unmapped_read_faults () =
  let m = Mem.create () in
  check_fault "segv" "SIGSEGV: read at 0x666000" (fun () -> Mem.read_u64 m 0x666000)

let test_write_to_readonly_faults () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.ro;
  check_fault "segv" "SIGSEGV: write at 0x10000" (fun () -> Mem.write_u64 m 0x10000 1)

let test_execute_only_blocks_read () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.write_u64 m 0x10000 42;
  Mem.protect m 0x10000 4096 Perm.xo;
  check_fault "xom read" "SIGSEGV: read at 0x10000" (fun () -> Mem.read_u64 m 0x10000);
  check_fault "xom write" "SIGSEGV: write at 0x10000" (fun () -> Mem.write_u64 m 0x10000 1)

let test_guard_page_fault_is_detection () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.protect m 0x10000 4096 Perm.none;
  Mem.tag_guard m 0x10000 4096;
  (match Mem.read_u64 m 0x10040 with
  | exception Fault.Fault f ->
      Alcotest.(check bool) "is detection" true (Fault.is_detection f)
  | _ -> Alcotest.fail "expected fault");
  (* A plain segv is not a detection. *)
  match Mem.read_u64 m 0x999000 with
  | exception Fault.Fault f ->
      Alcotest.(check bool) "not detection" false (Fault.is_detection f)
  | _ -> Alcotest.fail "expected fault"

let test_cross_page_word () =
  let m = Mem.create () in
  Mem.map m 0x10000 8192 Perm.rw;
  let addr = 0x10000 + 4092 in
  Mem.write_u64 m addr 0x1122334455667788;
  Alcotest.(check int) "cross page" 0x1122334455667788 (Mem.read_u64 m addr)

let test_byte_access () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.write_u8 m 0x10003 0xab;
  Alcotest.(check int) "byte" 0xab (Mem.read_u8 m 0x10003);
  (* Little-endian composition. *)
  Alcotest.(check int) "le word" (0xab lsl 24) (Mem.read_u64 m 0x10000)

let test_bytes_roundtrip () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.write_bytes m 0x10010 (Bytes.of_string "hello world");
  Alcotest.(check string) "bytes" "hello world"
    (Bytes.to_string (Mem.read_bytes m 0x10010 11))

let test_peek_ignores_perms () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.write_u64 m 0x10000 7;
  Mem.protect m 0x10000 4096 Perm.none;
  Alcotest.(check (option int)) "peek" (Some 7) (Mem.peek_u64 m 0x10000);
  Alcotest.(check (option int)) "peek unmapped" None (Mem.peek_u64 m 0x999000)

let test_unmap () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Alcotest.(check bool) "mapped" true (Mem.is_mapped m 0x10000);
  Mem.unmap m 0x10000 4096;
  Alcotest.(check bool) "unmapped" false (Mem.is_mapped m 0x10000)

let test_double_map_rejected () =
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Alcotest.check_raises "double map"
    (Invalid_argument "Mem.map: page 0x10000 already mapped") (fun () ->
      Mem.map m 0x10000 4096 Perm.rw)

let test_maxrss_tracking () =
  let m = Mem.create () in
  Mem.map m 0x10000 (16 * 4096) Perm.rw;
  Mem.unmap m 0x10000 (16 * 4096);
  Alcotest.(check int) "resident now" 0 (Mem.mapped_pages m);
  Alcotest.(check int) "high water" 16 (Mem.max_mapped_pages m)

let test_tlb_invalidated_by_protect () =
  (* Regression: the direct-mapped page TLB caches decoded permission
     bits, so protect/tag_guard must flush it — a cache-warm entry from
     before the permission change must not be honoured afterwards. *)
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.write_u64 m 0x10000 7;
  Alcotest.(check int) "warm read before protect" 7 (Mem.read_u64 m 0x10000);
  Mem.protect m 0x10000 4096 Perm.none;
  check_fault "read after mprotect none" "SIGSEGV: read at 0x10000" (fun () ->
      Mem.read_u64 m 0x10000);
  Mem.tag_guard m 0x10000 4096;
  match Mem.read_u64 m 0x10000 with
  | exception Fault.Fault f ->
      Alcotest.(check bool) "guard tag visible after warm entry" true (Fault.is_detection f)
  | _ -> Alcotest.fail "expected a guard fault"

let test_tlb_slot_aliasing () =
  (* 0x10000 and 0x50000 are exactly 64 pages apart, so they hash to the
     same slot of the 64-entry direct-mapped TLB. Interleaved accesses
     evict each other every time; data and permissions must stay per-page
     correct throughout. *)
  let m = Mem.create () in
  Mem.map m 0x10000 4096 Perm.rw;
  Mem.map m 0x50000 4096 Perm.ro;
  Mem.write_u64 m 0x10000 0xaaaa;
  for _ = 1 to 3 do
    Alcotest.(check int) "rw page data" 0xaaaa (Mem.read_u64 m 0x10000);
    Alcotest.(check int) "ro page data" 0 (Mem.read_u64 m 0x50000)
  done;
  check_fault "aliased slot keeps ro perms" "SIGSEGV: write at 0x50000" (fun () ->
      Mem.write_u64 m 0x50000 1);
  Mem.write_u64 m 0x10008 0xbbbb;
  Alcotest.(check int) "rw page still writable" 0xbbbb (Mem.read_u64 m 0x10008)

let test_addr_regions () =
  Alcotest.(check string) "text" "text" (Addr.region_to_string (Addr.region_of 0x40055d));
  Alcotest.(check string) "data" "data"
    (Addr.region_to_string (Addr.region_of 0x5555_5555_7260));
  Alcotest.(check string) "heap" "heap"
    (Addr.region_to_string (Addr.region_of 0x5555_6000_1000));
  Alcotest.(check string) "stack" "stack"
    (Addr.region_to_string (Addr.region_of 0x7fff_ffff_e3d0));
  Alcotest.(check string) "unmapped" "unmapped" (Addr.region_to_string (Addr.region_of 0x10))

let suite =
  [
    ( "mem",
      [
        Alcotest.test_case "map + rw" `Quick test_map_rw;
        Alcotest.test_case "zero fill" `Quick test_zero_fill;
        Alcotest.test_case "unmapped read faults" `Quick test_unmapped_read_faults;
        Alcotest.test_case "readonly write faults" `Quick test_write_to_readonly_faults;
        Alcotest.test_case "execute-only blocks read" `Quick test_execute_only_blocks_read;
        Alcotest.test_case "guard page detection" `Quick test_guard_page_fault_is_detection;
        Alcotest.test_case "cross-page word" `Quick test_cross_page_word;
        Alcotest.test_case "byte access" `Quick test_byte_access;
        Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
        Alcotest.test_case "peek ignores perms" `Quick test_peek_ignores_perms;
        Alcotest.test_case "unmap" `Quick test_unmap;
        Alcotest.test_case "double map rejected" `Quick test_double_map_rejected;
        Alcotest.test_case "maxrss tracking" `Quick test_maxrss_tracking;
        Alcotest.test_case "tlb invalidated by protect" `Quick test_tlb_invalidated_by_protect;
        Alcotest.test_case "tlb slot aliasing" `Quick test_tlb_slot_aliasing;
        Alcotest.test_case "address regions" `Quick test_addr_regions;
      ] );
  ]
