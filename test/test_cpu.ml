open R2c_machine
module Opts = R2c_compiler.Opts
module Link = R2c_compiler.Link
module Asm = R2c_compiler.Asm

(* Assemble raw machine-code functions into a runnable image: _start calls
   "main", then halts with rax as exit code. *)
let image ?(opts = Opts.default) funcs =
  let emitted =
    List.map
      (fun (rname, rinsns) -> Asm.of_raw { Opts.rname; rinsns; rbooby_trap = false })
      funcs
  in
  Link.link ~opts ~main:"main" emitted []

let run_insns ?opts ?(strict_align = true) insns =
  let img = image ?opts [ ("main", insns) ] in
  let p = Process.start ~strict_align img in
  (Process.run p, p)

let check_exit name expected outcome =
  match outcome with
  | Process.Exited n -> Alcotest.(check int) name expected n
  | other -> Alcotest.failf "%s: unexpected outcome %s" name (Process.outcome_to_string other)

let test_arith () =
  let outcome, _ =
    run_insns
      Insn.
        [
          Mov (Reg RAX, Imm (Abs 10));
          Binop (Imul, RAX, Imm (Abs 7));
          Binop (Sub, RAX, Imm (Abs 4));
          Ret;
        ]
  in
  check_exit "10*7-4" 66 outcome

let test_div_rem () =
  let outcome, _ =
    run_insns
      Insn.
        [
          Mov (Reg RAX, Imm (Abs 47));
          Div (RAX, Imm (Abs 5));
          Mov (Reg RBX, Imm (Abs 47));
          Rem (RBX, Imm (Abs 5));
          Binop (Imul, RAX, Imm (Abs 10));
          Binop (Add, RAX, Reg RBX);
          Ret;
        ]
  in
  check_exit "47/5*10 + 47%5" 92 outcome

let test_div_by_zero_faults () =
  let outcome, _ =
    run_insns Insn.[ Mov (Reg RAX, Imm (Abs 1)); Mov (Reg RBX, Imm (Abs 0)); Div (RAX, Reg RBX); Ret ]
  in
  match outcome with
  | Process.Crashed (Fault.Division_by_zero _) -> ()
  | other -> Alcotest.failf "expected SIGFPE, got %s" (Process.outcome_to_string other)

let test_push_pop () =
  let outcome, _ =
    run_insns
      Insn.[ Mov (Reg RAX, Imm (Abs 123)); Push (Reg RAX); Mov (Reg RAX, Imm (Abs 0)); Pop RAX; Ret ]
  in
  check_exit "push/pop" 123 outcome

let test_call_ret () =
  let img =
    image
      [
        ( "main",
          Insn.
            [
              Binop (Sub, RSP, Imm (Abs 8));
              Mov (Reg RDI, Imm (Abs 20));
              Call (TSym ("double_it", 0));
              Binop (Add, RAX, Imm (Abs 2));
              Binop (Add, RSP, Imm (Abs 8));
              Ret;
            ] );
        ("double_it", Insn.[ Mov (Reg RAX, Reg RDI); Binop (Add, RAX, Reg RDI); Ret ]);
      ]
  in
  let p = Process.start img in
  check_exit "call/ret" 42 (Process.run p);
  (* Two calls executed: _start->main and main->double_it. *)
  Alcotest.(check int) "call count" 2 (Process.calls p)

let test_misaligned_call_faults () =
  (* At function entry rsp is 8 mod 16 (the pushed RA); calling again
     without a frame violates the convention. *)
  let outcome, _ = run_insns Insn.[ Call (TSym ("main", 0)) ] in
  match outcome with
  | Process.Crashed (Fault.Misaligned_stack _) -> ()
  | other -> Alcotest.failf "expected misaligned stack, got %s" (Process.outcome_to_string other)

let test_trap_is_detected () =
  let outcome, p = run_insns Insn.[ Trap ] in
  (match outcome with
  | Process.Crashed (Fault.Booby_trap _) -> ()
  | other -> Alcotest.failf "expected booby trap, got %s" (Process.outcome_to_string other));
  Alcotest.(check bool) "detected" true (Process.detected p)

let test_branches () =
  (* Sum 1..5 with a loop, spelled as three code fragments connected by
     jumps (raw functions have no local labels). *)
  let img =
    let open Insn in
    image
      [
        ("main", [ Mov (Reg RAX, Imm (Abs 0)); Mov (Reg RBX, Imm (Abs 1)); Jmp (TSym ("loop", 0)) ]);
        ( "loop",
          [
            Cmp (Reg RBX, Imm (Abs 5));
            Jcc (Gt, TSym ("fin", 0));
            Binop (Add, RAX, Reg RBX);
            Binop (Add, RBX, Imm (Abs 1));
            Jmp (TSym ("loop", 0));
          ] );
        ("fin", [ Ret ]);
      ]
  in
  let p = Process.start img in
  check_exit "sum 1..5" 15 (Process.run p)

let test_memory_ops () =
  let outcome, _ =
    run_insns
      Insn.
        [
          Binop (Sub, RSP, Imm (Abs 16));
          Mov (Reg RAX, Imm (Abs 77));
          Mov (Mem (mem ~base:RSP ~disp:8 ()), Reg RAX);
          Mov (Reg RBX, Mem (mem ~base:RSP ~disp:8 ()));
          Binop (Add, RSP, Imm (Abs 16));
          Mov (Reg RAX, Reg RBX);
          Ret;
        ]
  in
  check_exit "store/load" 77 outcome

let test_lea_indexing () =
  let outcome, _ =
    run_insns
      Insn.
        [
          Mov (Reg RBX, Imm (Abs 100));
          Mov (Reg RCX, Imm (Abs 5));
          Lea (RAX, { base = Some RBX; index = Some (RCX, S8); disp = Abs 4 });
          Ret;
        ]
  in
  check_exit "100+5*8+4" 144 outcome

let test_vector_roundtrip () =
  let outcome, _ =
    run_insns
      Insn.
        [
          Binop (Sub, RSP, Imm (Abs 64));
          Mov (Reg RAX, Imm (Abs 11));
          Mov (Mem (mem ~base:RSP ()), Reg RAX);
          Mov (Reg RAX, Imm (Abs 22));
          Mov (Mem (mem ~base:RSP ~disp:8 ()), Reg RAX);
          Mov (Reg RAX, Imm (Abs 33));
          Mov (Mem (mem ~base:RSP ~disp:16 ()), Reg RAX);
          Mov (Reg RAX, Imm (Abs 44));
          Mov (Mem (mem ~base:RSP ~disp:24 ()), Reg RAX);
          Vload (3, mem ~base:RSP ());
          Vstore (mem ~base:RSP ~disp:32 (), 3);
          Mov (Reg RAX, Mem (mem ~base:RSP ~disp:56 ()));
          Binop (Add, RSP, Imm (Abs 64));
          Ret;
        ]
  in
  check_exit "ymm copies 4 words" 44 outcome

let test_builtin_malloc_and_print () =
  let outcome, p =
    run_insns
      Insn.
        [
          Binop (Sub, RSP, Imm (Abs 8));
          Mov (Reg RDI, Imm (Abs 64));
          Call (TSym ("malloc", 0));
          Mov (Reg RBX, Reg RAX);
          Mov (Reg RAX, Imm (Abs 9));
          Mov (Mem (mem ~base:RBX ()), Reg RAX);
          Mov (Reg RDI, Mem (mem ~base:RBX ()));
          Call (TSym ("print_int", 0));
          Mov (Reg RAX, Imm (Abs 0));
          Binop (Add, RSP, Imm (Abs 8));
          Ret;
        ]
  in
  check_exit "malloc+print" 0 outcome;
  Alcotest.(check string) "output" "9\n" (Process.output p)

let test_ret2libc_style_return () =
  (* Returning into a builtin entry must execute it — the ret2libc path the
     ROP attack uses: push a fake RA (exit's continuation is irrelevant
     because exit halts). *)
  let img = image [ ("main", Insn.[ Mov (Reg RDI, Imm (Abs 7)); Push (Imm (Sym ("exit", 0))); Ret ]) ] in
  let p = Process.start img in
  check_exit "ret into exit(7)" 7 (Process.run p)

let test_exec_of_stack_faults () =
  (* Jump to the stack: DEP/W^X blocks it. *)
  let outcome, _ = run_insns Insn.[ Jmp_ind (Reg RSP) ] in
  match outcome with
  | Process.Crashed (Fault.Segv { access = Fault.Exec; _ }) -> ()
  | other -> Alcotest.failf "expected exec fault, got %s" (Process.outcome_to_string other)

let test_xom_blocks_text_read () =
  let opts = { Opts.default with text_perm = Perm.xo } in
  let outcome, _ =
    run_insns ~opts
      Insn.[ Mov (Reg RAX, Imm (Abs Addr.text_base)); Mov (Reg RAX, Mem (mem ~base:RAX ())); Ret ]
  in
  match outcome with
  | Process.Crashed (Fault.Segv { access = Fault.Read; _ }) -> ()
  | other -> Alcotest.failf "expected read fault, got %s" (Process.outcome_to_string other)

let test_rx_text_read_succeeds () =
  (* Legacy RX text is readable — the JIT-ROP precondition. *)
  let outcome, _ =
    run_insns
      Insn.
        [
          Mov (Reg RAX, Imm (Abs Addr.text_base));
          Mov (Reg RAX, Mem (mem ~base:RAX ()));
          Mov (Reg RAX, Imm (Abs 0));
          Ret;
        ]
  in
  check_exit "read rx text" 0 outcome

let test_btra_hand_sequence () =
  (* Hand-written Figure 3 sequence: 2 pre-BTRAs, RA, 1 post-BTRA, with the
     rsp repositioning; the callee skips the post word. The call must land
     and return correctly, and the booby-trapped words must be on the
     stack afterwards. *)
  let img =
    image
      [
        ( "main",
          Insn.
            [
              Binop (Sub, RSP, Imm (Abs 8));
              (* align: calls happen at rsp = 0 mod 16 *)
              Push (Imm (Sym ("bt", 0)));
              Push (Imm (Sym ("bt", 0)));
              Push (Imm (Sym ("main", 0)));
              (* placeholder RA value; the call overwrites it *)
              Push (Imm (Sym ("bt", 0)));
              Binop (Add, RSP, Imm (Abs 16));
              Call (TSym ("callee", 0));
              Binop (Add, RSP, Imm (Abs 16));
              Binop (Add, RSP, Imm (Abs 8));
              Ret;
            ] );
        ( "callee",
          Insn.
            [
              Binop (Sub, RSP, Imm (Abs 8));
              Mov (Reg RAX, Imm (Abs 55));
              Binop (Add, RSP, Imm (Abs 8));
              Ret;
            ] );
        ("bt", Insn.[ Trap ]);
      ]
  in
  let p = Process.start img in
  check_exit "btra sequence" 55 (Process.run p)

let test_returning_to_btra_trips_trap () =
  (* If an "attacker" redirects the return to the booby trap value, the trap
     fires. *)
  let img =
    image
      [
        ("main", Insn.[ Push (Imm (Sym ("bt", 0))); Ret ]);
        ("bt", Insn.[ Nop 1; Trap ]);
      ]
  in
  let p = Process.start img in
  match Process.run p with
  | Process.Crashed (Fault.Booby_trap _) ->
      Alcotest.(check bool) "detected" true (Process.detected p)
  | other -> Alcotest.failf "expected booby trap, got %s" (Process.outcome_to_string other)

let test_cycle_accounting () =
  let outcome, p = run_insns Insn.[ Mov (Reg RAX, Imm (Abs 0)); Ret ] in
  check_exit "ok" 0 outcome;
  Alcotest.(check bool) "cycles positive" true (Process.cycles p > 0.0);
  Alcotest.(check bool) "insns counted" true (Process.insns p >= 4)

let test_restart_preserves_layout_and_detections () =
  let img = image [ ("main", Insn.[ Trap ]) ] in
  let p = Process.start img in
  (match Process.run p with
  | Process.Crashed (Fault.Booby_trap { addr }) -> (
      Process.restart p;
      match Process.run p with
      | Process.Crashed (Fault.Booby_trap { addr = addr2 }) ->
          Alcotest.(check int) "same layout after restart" addr addr2
      | other -> Alcotest.failf "unexpected %s" (Process.outcome_to_string other))
  | other -> Alcotest.failf "unexpected %s" (Process.outcome_to_string other));
  Alcotest.(check int) "two detections accumulated" 2
    (List.length p.Process.detections);
  Alcotest.(check int) "restart count" 1 p.Process.restarts

let test_fuel_exhaustion () =
  let img = image [ ("main", Insn.[ Jmp (TSym ("main", 0)) ]) ] in
  let p = Process.start ~fuel:1000 img in
  match Process.run p with
  | Process.Timeout -> ()
  | other -> Alcotest.failf "expected timeout, got %s" (Process.outcome_to_string other)

let test_read_input_overflow_reaches_memory () =
  (* read_input writes attacker bytes through checked writes. *)
  let img =
    image
      [
        ( "main",
          Insn.
            [
              Binop (Sub, RSP, Imm (Abs 24));
              Mov (Reg RDI, Reg RSP);
              Mov (Reg RSI, Imm (Abs 16));
              Call (TSym ("read_input", 0));
              Mov (Reg RBX, Reg RAX);
              Mov8 (Reg RAX, Mem (mem ~base:RSP ()));
              Binop (Add, RSP, Imm (Abs 24));
              Ret;
            ] );
      ]
  in
  let p = Process.start img in
  Cpu.push_input p.Process.cpu "A";
  check_exit "first byte" (Char.code 'A') (Process.run p)

let test_fault_detection_classes () =
  (* Monitoring counts tripwire faults as detections; plain crashes (and
     injected chaos faults, indistinguishable from organic failure) are
     not. Every constructor is pinned so a new fault kind must choose. *)
  let detections =
    Fault.
      [
        Guard_page { addr = 0x5000; access = Read };
        Booby_trap { addr = 0x1010 };
        Cfi_violation { rip = 0x1000; expected = 1; got = 2 };
      ]
  in
  let plain_crashes =
    Fault.
      [
        Segv { addr = 0xdead; access = Write };
        Misaligned_stack { rip = 0x1000; rsp = 0x7fff_0004 };
        Invalid_opcode { addr = 0x42 };
        Division_by_zero { rip = 0x1000 };
        Injected { rip = 0x1000; kind = "bitflip" };
      ]
  in
  List.iter
    (fun f -> Alcotest.(check bool) (Fault.to_string f) true (Fault.is_detection f))
    detections;
  List.iter
    (fun f -> Alcotest.(check bool) (Fault.to_string f) false (Fault.is_detection f))
    plain_crashes

let test_restart_refills_fuel () =
  (* Fuel is a per-lifetime budget; a respawned worker gets a full one.
     (Regression: restart used to leave the spent fuel_left in place, so a
     long-lived pool slowly starved its own children.) *)
  let img = image [ ("main", Insn.[ Mov (Reg RAX, Imm (Abs 0)); Ret ]) ] in
  let p = Process.start ~fuel:5000 img in
  check_exit "first life" 0 (Process.run p);
  let spent = 5000 - Process.fuel_left p in
  Alcotest.(check bool) "run consumed fuel" true (spent > 0);
  Process.restart p;
  Alcotest.(check int) "full budget after restart" 5000 (Process.fuel_left p);
  check_exit "second life" 0 (Process.run p)

let test_crash_accounting_across_restarts () =
  (* Crash and detection counters are monitoring state: they survive
     restarts, unlike CPU/memory/output. *)
  let img = image [ ("main", Insn.[ Trap ]) ] in
  let p = Process.start img in
  for _ = 1 to 3 do
    (match Process.run p with
    | Process.Crashed (Fault.Booby_trap _) -> ()
    | other -> Alcotest.failf "expected trap, got %s" (Process.outcome_to_string other));
    Process.restart p
  done;
  Alcotest.(check int) "crashes accumulated" 3 p.Process.crashes;
  Alcotest.(check int) "detections accumulated" 3 (List.length p.Process.detections);
  Alcotest.(check int) "restarts counted" 3 p.Process.restarts;
  Alcotest.(check bool) "detected flag" true (Process.detected p)

let test_run_until_many_breakpoints () =
  (* Regression for the breakpoint-set representation: run_until now
     probes a hash set instead of List.mem. With 64 breakpoints, the stop
     sequence must match a list-based stepping loop exactly. *)
  let insns =
    List.init 140 (fun i -> Insn.Mov (Insn.Reg Insn.RAX, Insn.Imm (Insn.Abs i)))
    @ [ Insn.Ret ]
  in
  let img = image [ ("main", insns) ] in
  let main_entry = Image.symbol img "main" in
  let main_fn =
    match Image.func_of_addr img main_entry with
    | Some f -> f
    | None -> Alcotest.fail "main not found"
  in
  let in_main a = a >= main_fn.Image.entry && a < main_fn.Image.entry + main_fn.Image.code_len in
  let main_addrs =
    Array.to_list (Lazy.force img.Image.code_list)
    |> List.filter_map (fun (a, _, _) -> if in_main a then Some a else None)
  in
  (* Every other instruction of main, capped at 64 breakpoints. *)
  let break =
    List.filteri (fun i _ -> i mod 2 = 1) main_addrs |> List.filteri (fun i _ -> i < 64)
  in
  Alcotest.(check int) "64 breakpoints" 64 (List.length break);
  let load () = Loader.load ~strict_align:true ~profile:Cost.epyc_rome img in
  let list_run_until cpu ~fuel =
    (* The historical list-based advance: same check order as run_until. *)
    let rec go budget =
      if cpu.Cpu.halted then Error Cpu.Halted
      else if budget <= 0 then Error Cpu.Fuel_exhausted
      else if List.mem cpu.Cpu.rip break then Ok ()
      else begin
        Cpu.step cpu;
        go (budget - 1)
      end
    in
    try go fuel with Fault.Fault f -> Error (Cpu.Faulted f)
  in
  let stops advance cpu =
    let acc = ref [] in
    let rec go () =
      match advance cpu with
      | Ok () ->
          acc := cpu.Cpu.rip :: !acc;
          Cpu.step cpu;
          go ()
      | Error r -> (List.rev !acc, r, cpu.Cpu.insns, Cpu.reg_get cpu Insn.RAX)
    in
    go ()
  in
  let fast = stops (fun c -> Cpu.run_until c ~fuel:10_000 ~break) (load ()) in
  let slow = stops (fun c -> list_run_until c ~fuel:10_000) (load ()) in
  let s_fast, r_fast, i_fast, rax_fast = fast in
  let s_slow, r_slow, i_slow, rax_slow = slow in
  Alcotest.(check (list int)) "stop sequence" s_slow s_fast;
  Alcotest.(check int) "64 stops hit" 64 (List.length s_fast);
  Alcotest.(check bool) "both halted" true (r_fast = Cpu.Halted && r_slow = Cpu.Halted);
  Alcotest.(check int) "insns" i_slow i_fast;
  Alcotest.(check int) "final rax" rax_slow rax_fast

let suite =
  [
    ( "cpu",
      [
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "div/rem" `Quick test_div_rem;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
        Alcotest.test_case "push/pop" `Quick test_push_pop;
        Alcotest.test_case "call/ret + call count" `Quick test_call_ret;
        Alcotest.test_case "misaligned call faults" `Quick test_misaligned_call_faults;
        Alcotest.test_case "trap detected" `Quick test_trap_is_detected;
        Alcotest.test_case "branches/loop" `Quick test_branches;
        Alcotest.test_case "memory ops" `Quick test_memory_ops;
        Alcotest.test_case "lea indexing" `Quick test_lea_indexing;
        Alcotest.test_case "vector roundtrip" `Quick test_vector_roundtrip;
        Alcotest.test_case "builtins malloc/print" `Quick test_builtin_malloc_and_print;
        Alcotest.test_case "ret2libc return" `Quick test_ret2libc_style_return;
        Alcotest.test_case "exec of stack faults" `Quick test_exec_of_stack_faults;
        Alcotest.test_case "xom blocks text read" `Quick test_xom_blocks_text_read;
        Alcotest.test_case "rx text readable" `Quick test_rx_text_read_succeeds;
        Alcotest.test_case "BTRA hand sequence" `Quick test_btra_hand_sequence;
        Alcotest.test_case "return to BTRA traps" `Quick test_returning_to_btra_trips_trap;
        Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
        Alcotest.test_case "restart semantics" `Quick test_restart_preserves_layout_and_detections;
        Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
        Alcotest.test_case "read_input" `Quick test_read_input_overflow_reaches_memory;
        Alcotest.test_case "fault detection classes" `Quick test_fault_detection_classes;
        Alcotest.test_case "restart refills fuel" `Quick test_restart_refills_fuel;
        Alcotest.test_case "crash accounting across restarts" `Quick
          test_crash_accounting_across_restarts;
        Alcotest.test_case "run_until with 64 breakpoints" `Quick
          test_run_until_many_breakpoints;
      ] );
  ]
