(* Dataflow framework + translation validator (PR 7): fixpoint solver
   properties on generated programs, liveness soundness via dead-store
   elimination against the reference interpreter, CCP hand cases, the
   use-before-init validation check, and the Tval gate (clean samples,
   caught plants, job-count determinism, corpus replay). *)

module Q = QCheck
module Dataflow = R2c_analysis.Dataflow
module Lint = R2c_analysis.Lint
module Selfcheck = R2c_analysis.Selfcheck
module Tval = R2c_analysis.Tval
module Dconfig = R2c_core.Dconfig
open Ir

(* --- solver: fixpoints on generated programs --------------------------- *)

let prop_solver_fixpoint =
  Q.Test.make ~count:40 ~name:"dataflow solver reaches a fixpoint on gen-v2 programs"
    Q.(int_range 1 1_000_000)
    (fun seed ->
      let p = R2c_fuzz.Gen.v2 ~seed () in
      List.for_all
        (fun f ->
          let n = List.length f.blocks in
          let lv = Dataflow.Liveness.compute f in
          let rd = Dataflow.Reaching.compute f in
          let cp = Dataflow.Constprop.compute f in
          (* The solver caps sweeps at 64 + 4n and raises past it; getting
             results back at all is the fixpoint claim. The bound check
             asserts convergence wasn't just the cap. *)
          lv.Dataflow.Liveness.iterations <= (4 * n) + 64
          && rd.Dataflow.Reaching.iterations <= (4 * n) + 64
          && cp.Dataflow.Constprop.iterations <= (4 * n) + 64)
        p.funcs)

(* --- liveness soundness: DSE must preserve observables ------------------ *)

(* Delete every pure definition of a var dead immediately after it (the
   dead-store rule's findings) and re-interpret: if liveness ever called
   a live var dead, output or exit code changes. *)
let dse (p : Ir.program) =
  let funcs =
    List.map
      (fun f ->
        let lv = Dataflow.Liveness.compute f in
        let blocks = Array.of_list f.blocks in
        let blocks =
          Array.to_list
            (Array.mapi
               (fun bi b ->
                 let before = Dataflow.Liveness.before lv f bi in
                 let body =
                   List.filteri
                     (fun k instr ->
                       match instr with
                       | Mov (v, _) | Cmp (v, _, _, _) | Slot_addr (v, _)
                       | Binop
                           ( v,
                             (Add | Sub | Mul | And | Or | Xor | Shl | Shr | Sar),
                             _,
                             _ ) ->
                           Dataflow.Iset.mem v before.(k + 1)
                       | _ -> true)
                     b.body
                 in
                 { b with body })
               blocks)
        in
        { f with blocks })
      p.funcs
  in
  { p with funcs }

let observable p =
  match Interp.run ~fuel:2_000_000 p with
  | Ok r -> Printf.sprintf "%s/exit=%d" r.Interp.output r.Interp.exit_code
  | Error e -> "error:" ^ Interp.error_to_string e

let prop_liveness_sound =
  Q.Test.make ~count:40
    ~name:"dead-store elimination via liveness preserves interpreter observables"
    Q.(int_range 1 1_000_000)
    (fun seed ->
      let p = R2c_fuzz.Gen.v2 ~seed () in
      observable p = observable (dse p))

(* --- hand-built functions for the instances ----------------------------- *)

let fn ~nparams ~nvars ?(slots = [||]) blocks =
  { name = "f"; nparams; nvars; slots; blocks }

let reaching_uninit_diamond () =
  (* v1 defined on one arm of a diamond only: the join may still see the
     virtual Uninit site, the straight arm may not. *)
  let diamond ~both =
    fn ~nparams:1 ~nvars:2
      [
        { lbl = 0; body = []; term = Cond_br (Var 0, 1, 2) };
        { lbl = 1; body = [ Mov (1, Const 7) ]; term = Br 3 };
        {
          lbl = 2;
          body = (if both then [ Mov (1, Const 9) ] else []);
          term = Br 3;
        };
        { lbl = 3; body = []; term = Ret (Some (Var 1)) };
      ]
  in
  Alcotest.(check (list (triple int int int)))
    "one-arm def flagged at the join read"
    [ (1, 3, 0) ]
    (Dataflow.Reaching.uninit_reads (diamond ~both:false));
  Alcotest.(check (list (triple int int int)))
    "both-arm def is clean"
    []
    (Dataflow.Reaching.uninit_reads (diamond ~both:true))

let ccp_hand_cases () =
  (* Constants fold through arithmetic; a constant-false branch's arm is
     not executable, so facts (and lint rules) ignore it. *)
  let f =
    fn ~nparams:0 ~nvars:4 ~slots:[| 16 |]
      [
        {
          lbl = 0;
          body = [ Mov (0, Const 0); Mov (1, Const 6); Binop (2, Mul, Var 1, Const 7) ];
          term = Cond_br (Var 0, 1, 2);
        };
        (* statically dead: would otherwise flag div-by-zero and fold. *)
        { lbl = 1; body = [ Binop (3, Div, Var 2, Const 0) ]; term = Br 2 };
        { lbl = 2; body = []; term = Ret (Some (Var 2)) };
      ]
  in
  let cp = Dataflow.Constprop.compute f in
  Alcotest.(check (list bool))
    "executability: dead arm pruned" [ true; false; true ]
    (Array.to_list cp.Dataflow.Constprop.executable);
  let envs = Dataflow.Constprop.before cp f 2 in
  (match Dataflow.Constprop.eval envs.(0) (Var 2) with
  | Dataflow.Constprop.Cconst 42 -> ()
  | _ -> Alcotest.fail "6 * 7 did not fold to 42");
  Alcotest.(check int) "folded counts the Mul" 1 (Dataflow.Constprop.folded cp f);
  (* The dead arm's divide-by-zero must not lint... *)
  let p1 = { funcs = [ { f with name = "main" } ]; globals = []; main = "main" } in
  Alcotest.(check (list string)) "no findings behind a false branch" []
    (List.map Lint.ir_finding_to_string (Lint.run_ir p1));
  (* ...but the same divide on the live path must. *)
  let live =
    fn ~nparams:0 ~nvars:3
      [
        {
          lbl = 0;
          body = [ Mov (0, Const 0); Binop (1, Add, Const 1, Const 2);
                   Binop (2, Div, Var 1, Var 0) ];
          term = Ret (Some (Var 2));
        };
      ]
  in
  let p2 = { funcs = [ { live with name = "main" } ]; globals = []; main = "main" } in
  Alcotest.(check (list string))
    "live constant zero divisor flagged"
    [ "[const-div-by-zero] main.L0#2: divisor is the constant 0" ]
    (List.map Lint.ir_finding_to_string (Lint.run_ir p2))

let slot_bounds_cases () =
  (* Cslot tracks offsets through Add/Sub, so an escape assembled from
     slot arithmetic is still caught statically. *)
  let mk off =
    let f =
      fn ~nparams:0 ~nvars:3 ~slots:[| 16 |]
        [
          {
            lbl = 0;
            body =
              [
                Slot_addr (0, 0);
                Binop (1, Add, Var 0, Const off);
                Store (Var 1, 4, Const 1);
                Load (2, Var 1, 0);
              ];
            term = Ret (Some (Var 2));
          };
        ]
    in
    { funcs = [ { f with name = "main" } ]; globals = []; main = "main" }
  in
  Alcotest.(check (list string)) "in-bounds slot arithmetic is clean" []
    (List.map Lint.ir_finding_to_string (Lint.run_ir (mk 4)));
  Alcotest.(check bool) "escaping slot arithmetic is flagged" true
    (List.exists
       (fun (fd : Lint.ir_finding) -> fd.Lint.ir_rule = "oob-const-slot-offset")
       (Lint.run_ir (mk 8)))

(* --- Validate: use before initialization -------------------------------- *)

let validate_uninit_cases () =
  let prog blocks =
    {
      funcs = [ { name = "main"; nparams = 0; nvars = 2; slots = [||]; blocks } ];
      globals = [];
      main = "main";
    }
  in
  let errs p = List.map Validate.error_to_string (Validate.check p) in
  Alcotest.(check (list string))
    "straight-line uninit read flagged"
    [ "main: var 1 read before any definition (block 0)" ]
    (errs (prog [ { lbl = 0; body = []; term = Ret (Some (Var 1)) } ]));
  Alcotest.(check (list string))
    "one-arm definition flagged at the join"
    [ "main: var 1 read before any definition (block 3)" ]
    (errs
       (prog
          [
            { lbl = 0; body = [ Mov (0, Const 1) ]; term = Cond_br (Var 0, 1, 2) };
            { lbl = 1; body = [ Mov (1, Const 7) ]; term = Br 3 };
            { lbl = 2; body = []; term = Br 3 };
            { lbl = 3; body = []; term = Ret (Some (Var 1)) };
          ]));
  Alcotest.(check (list string))
    "both-arm definition is clean" []
    (errs
       (prog
          [
            { lbl = 0; body = [ Mov (0, Const 1) ]; term = Cond_br (Var 0, 1, 2) };
            { lbl = 1; body = [ Mov (1, Const 7) ]; term = Br 3 };
            { lbl = 2; body = [ Mov (1, Const 9) ]; term = Br 3 };
            { lbl = 3; body = []; term = Ret (Some (Var 1)) };
          ]));
  (* A loop-carried var defined before the back edge is clean. *)
  Alcotest.(check (list string))
    "loop-carried definition is clean" []
    (errs
       (prog
          [
            { lbl = 0; body = [ Mov (1, Const 0) ]; term = Br 1 };
            {
              lbl = 1;
              body = [ Binop (1, Add, Var 1, Const 1); Cmp (0, Lt, Var 1, Const 9) ];
              term = Cond_br (Var 0, 1, 2);
            };
            { lbl = 2; body = []; term = Ret (Some (Var 1)) };
          ]))

(* --- Tval: clean samples, caught plants, determinism -------------------- *)

let check_clean name cfg p =
  let r = Tval.validate_config cfg p in
  Alcotest.(check (list string))
    (name ^ " findings")
    []
    (List.map Tval.finding_to_string r.Tval.findings);
  Alcotest.(check bool) (name ^ " validated blocks") true (r.Tval.blocks > 0)

let tval_smoke () =
  check_clean "arith/baseline" Dconfig.baseline Samples.arith_prog;
  check_clean "arith/full" (Dconfig.full ()) Samples.arith_prog;
  check_clean "fib/baseline" Dconfig.baseline (Samples.fib_prog 10);
  check_clean "fib/full" (Dconfig.full ()) (Samples.fib_prog 10);
  check_clean "loop/full" (Dconfig.full ()) (Samples.loop_prog 8);
  check_clean "carrier/full-checked" Dconfig.full_checked (Selfcheck.carrier ())

let prop_tval_gen_clean =
  Q.Test.make ~count:12 ~name:"tval clean on gen-v2 programs under full R2C"
    Q.(int_range 1 1_000_000)
    (fun seed ->
      let p = R2c_fuzz.Gen.v2 ~seed () in
      let r = Tval.validate_config (Dconfig.full ()) p in
      r.Tval.findings = [] && r.Tval.blocks > 0)

let validate_planted ?(seed = 3) cfg plant p =
  let planted = R2c_fuzz.Oracle.apply_plant plant p in
  let img, meta, p' = R2c_core.Pipeline.compile_with_meta ~seed cfg planted in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        match Ir.find_func p f.Ir.name with Some o -> o | None -> f)
      p'.Ir.funcs
  in
  Tval.validate ~img ~meta { p' with Ir.funcs }

let tval_plants () =
  List.iter
    (fun (name, plant, p) ->
      let r = validate_planted Dconfig.baseline plant p in
      Alcotest.(check bool) (name ^ " caught") true (r.Tval.findings <> []))
    [
      ("sub-to-add", R2c_fuzz.Oracle.Sub_to_add, Samples.arith_prog);
      ("off-by-one", R2c_fuzz.Oracle.Off_by_one, Samples.loop_prog 8);
    ];
  let r =
    validate_planted (Dconfig.full ()) R2c_fuzz.Oracle.Drop_stores (Samples.loop_prog 8)
  in
  Alcotest.(check bool) "drop-stores caught" true (r.Tval.findings <> [])

let ir_selfcheck_wired () =
  List.iter
    (fun (o : Selfcheck.ir_outcome) ->
      Alcotest.(check (list string))
        (Selfcheck.ir_mutation_to_string o.ir_mutation ^ " trips exactly its rule")
        [ o.ir_expected ] o.ir_rules_hit;
      Alcotest.(check bool)
        (Selfcheck.ir_mutation_to_string o.ir_mutation ^ " ok")
        true o.ir_ok)
    (Selfcheck.run_ir ())

(* The whole Tvalbench report — findings, plant catches, corpus — must be
   identical at any Domain-pool width (the CLI's --jobs 1 vs R2C_JOBS=8
   contract, checked here at the library level). *)
let tval_jobs_deterministic () =
  let r1 = R2c_harness.Tvalbench.run ~seed:3 ~jobs:1 () in
  let r8 = R2c_harness.Tvalbench.run ~seed:3 ~jobs:8 () in
  Alcotest.(check bool) "reports identical at jobs=1 vs jobs=8" true (r1 = r8);
  Alcotest.(check (list string)) "gate clean" [] (R2c_harness.Tvalbench.gate r1);
  Alcotest.(check int) "17 workloads" 17 (List.length r1.R2c_harness.Tvalbench.workloads)

(* Replay every committed fuzz reproducer through the validator: a
   divergence the fuzzer once caught dynamically must not regress into
   one the validator misses. Vacuous while the corpus is empty. *)
let tval_corpus_replay () =
  List.iter
    (fun path ->
      match R2c_fuzz.Corpus.load path with
      | Error e -> Alcotest.fail (path ^ ": " ^ e)
      | Ok p ->
          Alcotest.(check (list string))
            (path ^ " validate") []
            (List.map Validate.error_to_string (Validate.check p));
          check_clean path (Dconfig.full ()) p)
    (R2c_fuzz.Corpus.files ~dir:"corpus")

let suite =
  [
    ( "dataflow",
      List.map QCheck_alcotest.to_alcotest
        [ prop_solver_fixpoint; prop_liveness_sound; prop_tval_gen_clean ]
      @ [
          Alcotest.test_case "reaching: uninit through a diamond" `Quick
            reaching_uninit_diamond;
          Alcotest.test_case "ccp: folding + executability pruning" `Quick ccp_hand_cases;
          Alcotest.test_case "ccp: slot bounds through arithmetic" `Quick slot_bounds_cases;
          Alcotest.test_case "validate: use before initialization" `Quick
            validate_uninit_cases;
          Alcotest.test_case "tval: smoke on samples" `Quick tval_smoke;
          Alcotest.test_case "tval: plants caught" `Quick tval_plants;
          Alcotest.test_case "selfcheck: IR mutations trip exactly their rule" `Quick
            ir_selfcheck_wired;
          Alcotest.test_case "tvalbench: job-count determinism + clean gate" `Slow
            tval_jobs_deterministic;
          Alcotest.test_case "tval: corpus replay" `Quick tval_corpus_replay;
        ] );
  ]
