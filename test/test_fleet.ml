(* Serving fleet: pool drain/attach semantics the fleet builds on, the
   rotation state machine, and the QCheck admission/accounting/quarantine
   properties from the E-FLEET acceptance list. *)

open R2c_machine
module Pool = R2c_runtime.Pool
module Fleet = R2c_runtime.Fleet
module Fleetbench = R2c_harness.Fleetbench
module Fleetapp = R2c_workloads.Fleetapp
module Obs = R2c_obs
module Q = QCheck

let dc = R2c_core.Dconfig.full_checked
let build ~seed = Fleetapp.build ~seed dc

let make_pool ?obs ?ns ?(cfg = Pool.default_config) () =
  Pool.create ?obs ?ns ~cfg ~build ~break_sym:Fleetapp.break_symbol ()

let serve_n pool n =
  for _ = 1 to n do
    match Pool.submit pool "GET /status" with
    | Pool.Served _ -> ()
    | _ -> Alcotest.fail "legit request not served"
  done

(* --- Pool.shutdown: graceful drain --- *)

let test_pool_shutdown () =
  let pool = make_pool () in
  serve_n pool 5;
  Alcotest.(check bool) "live before" false (Pool.is_shutdown pool);
  Pool.shutdown pool;
  Alcotest.(check bool) "shut after" true (Pool.is_shutdown pool);
  let s = Pool.stats pool in
  let served0 = s.Pool.served and shed0 = s.Pool.shed in
  (match Pool.submit pool "GET /status" with
  | Pool.Dropped -> ()
  | _ -> Alcotest.fail "admission still open after shutdown");
  Alcotest.(check int) "refused request counted shed" (shed0 + 1) s.Pool.shed;
  Alcotest.(check int) "nothing served after drain" served0 s.Pool.served;
  (* idempotent: a second drain changes nothing *)
  let dropped0 = s.Pool.dropped in
  Pool.shutdown pool;
  Alcotest.(check int) "second shutdown is a no-op" dropped0 s.Pool.dropped

let test_pool_shutdown_final_snapshot () =
  (* The drain pushes a terminal stats snapshot into the registry. *)
  let sink = Obs.Sink.create () in
  let pool = make_pool ~obs:sink () in
  serve_n pool 4;
  Pool.shutdown pool;
  let c = Obs.Metrics.counter sink.Obs.Sink.metrics "pool_served_total" in
  Alcotest.(check int) "snapshot matches stats" (Pool.stats pool).Pool.served
    (Obs.Metrics.counter_value c)

(* --- idempotent observation / metric namespacing --- *)

let test_pool_obs_idempotent () =
  (* Sink attached at create; re-attaching the same sink through run/attach
     must neither double-register pool_* instruments nor corrupt their
     values. *)
  let sink = Obs.Sink.create () in
  let pool = make_pool ~obs:sink () in
  serve_n pool 3;
  ignore (Pool.run ~obs:sink pool [ "GET /status"; "GET /status" ]);
  Pool.attach pool sink;
  serve_n pool 2;
  let c = Obs.Metrics.counter sink.Obs.Sink.metrics "pool_served_total" in
  Alcotest.(check int) "served counter tracks stats exactly" 7
    (Obs.Metrics.counter_value c);
  Alcotest.(check int) "stats agree" 7 (Pool.stats pool).Pool.served

let test_pool_ns_isolates_metrics () =
  (* Two pools sharing one registry must not clobber each other's series:
     the fleet gives each shard its own prefix. *)
  let sink = Obs.Sink.create () in
  let a = make_pool ~obs:sink ~ns:"shard0_" () in
  let b = make_pool ~obs:sink ~ns:"shard1_" () in
  serve_n a 4;
  serve_n b 2;
  let va =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter sink.Obs.Sink.metrics "shard0_pool_served_total")
  in
  let vb =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter sink.Obs.Sink.metrics "shard1_pool_served_total")
  in
  Alcotest.(check int) "shard0 series" 4 va;
  Alcotest.(check int) "shard1 series" 2 vb

(* --- fleet: rotation state machine --- *)

let quiet_shard =
  {
    Fleet.default_config.Fleet.shard with
    Pool.workers = 2;
    requests_per_child = 0;
    inject = Inject.zero;
  }

let mk_fleet ?(cfg = Fleet.default_config) ?obs () =
  Fleet.create ~cfg ?obs ~build ~break_sym:Fleetapp.break_symbol ()

let test_fleet_rotates_without_drops () =
  (* No chaos; a tight epoch timer. Every rotation must complete without
     costing a single request. *)
  let cfg =
    {
      Fleet.default_config with
      Fleet.shards = 2;
      seed = 5;
      epoch_cycles = 200_000;
      arrival_cycles = 800;
      shard = quiet_shard;
    }
  in
  let fleet = mk_fleet ~cfg () in
  for _ = 1 to 1500 do
    match Fleet.submit fleet "GET /item/1" with
    | Pool.Served _ -> ()
    | _ -> Alcotest.fail "request lost in a chaos-free fleet"
  done;
  let s = Fleet.stats fleet in
  Alcotest.(check bool)
    (Printf.sprintf "several rotations completed (%d)" s.Fleet.rotations)
    true
    (s.Fleet.rotations >= 3);
  Alcotest.(check int) "epoch = completed rotations" s.Fleet.rotations
    (Fleet.epoch fleet);
  Alcotest.(check int) "zero rotation drops" 0 s.Fleet.rotation_drops;
  Alcotest.(check int) "zero drops at all" 0 s.Fleet.dropped;
  Alcotest.(check int) "everything served" 1500 s.Fleet.served

let test_fleet_reactive_rotation () =
  (* Timer off; the detection trigger alone must turn the epoch over.
     Detections come from heavy bit-flip/load-corruption chaos steering
     corrupted control flow into booby traps (seed pinned to a stream
     where that happens within a few dozen requests). *)
  let cfg =
    {
      Fleet.default_config with
      Fleet.shards = 2;
      seed = 2;
      epoch_cycles = 0;
      rotate_detections = 1;
      quarantine_detections = 0;
      shard =
        {
          Fleet.default_config.Fleet.shard with
          Pool.workers = 2;
          requests_per_child = 16;
          inject =
            {
              Inject.bitflip = 0.003;
              load_corrupt = 0.003;
              spurious_fault = 0.0;
              fuel_cut = 0.0;
            };
        };
    }
  in
  let fleet = mk_fleet ~cfg () in
  for _ = 1 to 400 do
    ignore (Fleet.submit fleet "GET /item/1")
  done;
  Alcotest.(check bool) "detections observed" true
    ((Fleet.pool_totals fleet).Pool.detections > 0);
  Alcotest.(check bool) "reactive rotation fired" true
    ((Fleet.stats fleet).Fleet.rotations >= 1)

let test_fleet_metrics_registered () =
  let cfg =
    { Fleet.default_config with Fleet.shards = 2; seed = 3; shard = quiet_shard }
  in
  let fleet = mk_fleet ~cfg () in
  for _ = 1 to 10 do
    ignore (Fleet.submit fleet "GET /item/1")
  done;
  let m = (Fleet.sink fleet).Obs.Sink.metrics in
  let v name = Obs.Metrics.counter_value (Obs.Metrics.counter m name) in
  Alcotest.(check int) "fleet_requests_total" 10 (v "fleet_requests_total");
  Alcotest.(check int) "fleet_served_total" 10 (v "fleet_served_total");
  Alcotest.(check int) "per-shard series present"
    ((Fleet.stats fleet).Fleet.served)
    (v "fleet_shard0_served_total" + v "fleet_shard1_served_total")

(* --- QCheck properties --- *)

let stormy rate =
  { Inject.bitflip = 0.0; load_corrupt = 0.0; spurious_fault = rate; fuel_cut = 0.0 }

let run_fleet ~seed ~queue_bound ~arrival_cycles ~rate ~requests =
  let cfg =
    {
      Fleet.default_config with
      Fleet.shards = 2;
      seed;
      queue_bound;
      arrival_cycles;
      epoch_cycles = 120_000;
      quarantine_cycles = 20_000;
      shard =
        {
          Fleet.default_config.Fleet.shard with
          Pool.workers = 1;
          requests_per_child = 16;
          restart_cycles = 30_000;
          rerandomize_cycles = 50_000;
          inject = stormy rate;
        };
    }
  in
  let fleet = mk_fleet ~cfg () in
  let responses = List.init requests (fun i -> Fleet.submit fleet (Printf.sprintf "GET /item/%d" i)) in
  (fleet, responses)

let prop_admission_bound =
  Q.Test.make ~count:6 ~name:"fleet: admitted depth never exceeds queue_bound"
    Q.(triple (int_range 1 6) (int_range 50 400) (int_range 1 1000))
    (fun (queue_bound, arrival_cycles, seed) ->
      let fleet, _ =
        run_fleet ~seed ~queue_bound ~arrival_cycles ~rate:0.0005 ~requests:250
      in
      (Fleet.stats fleet).Fleet.max_queue_depth <= queue_bound)

let prop_accounting =
  Q.Test.make ~count:6
    ~name:"fleet: served + dropped = submitted, shed + rejected = dropped"
    Q.(pair (int_range 1 1000) (int_range 1 4))
    (fun (seed, bound) ->
      let fleet, responses =
        run_fleet ~seed ~queue_bound:bound ~arrival_cycles:150 ~rate:0.001
          ~requests:300
      in
      let s = Fleet.stats fleet in
      List.length responses = s.Fleet.submitted
      && s.Fleet.served + s.Fleet.dropped = s.Fleet.submitted
      && s.Fleet.shed + s.Fleet.rejected = s.Fleet.dropped
      && s.Fleet.served
         = List.length
             (List.filter (function Pool.Served _ -> true | _ -> false) responses))

let prop_quarantine_no_loss =
  (* Chaos heavy enough to force quarantines; every submission still gets
     exactly one response and the books still balance — quarantining a
     shard never loses a request that was already admitted. *)
  Q.Test.make ~count:5 ~name:"fleet: quarantine never loses a request"
    Q.(int_range 1 1000)
    (fun seed ->
      let fleet, responses =
        run_fleet ~seed ~queue_bound:4 ~arrival_cycles:200 ~rate:0.002 ~requests:400
      in
      let s = Fleet.stats fleet in
      List.length responses = 400
      && s.Fleet.submitted = 400
      && s.Fleet.served + s.Fleet.dropped = 400)

let prop_jobs_deterministic =
  (* The fleet report — availability, latency percentiles, rotation and
     drop counters — is bit-identical whether background epoch compiles
     run serially or across 8 domains. *)
  Q.Test.make ~count:3 ~name:"fleet: report identical at jobs=1 and jobs=8"
    Q.(int_range 1 1000)
    (fun seed ->
      let report jobs =
        Obs.Json.to_string
          (Fleetbench.json
             (Fleetbench.run ~seed ~requests:600 ~shards:2 ~epoch_cycles:150_000
                ~jobs ()))
      in
      String.equal (report 1) (report 8))

let props = List.map QCheck_alcotest.to_alcotest
    [ prop_admission_bound; prop_accounting; prop_quarantine_no_loss;
      prop_jobs_deterministic ]

let suite =
  [
    ( "fleet",
      [
        Alcotest.test_case "pool shutdown drains gracefully" `Quick test_pool_shutdown;
        Alcotest.test_case "pool shutdown snapshots metrics" `Quick
          test_pool_shutdown_final_snapshot;
        Alcotest.test_case "pool observation is idempotent" `Quick
          test_pool_obs_idempotent;
        Alcotest.test_case "pool ns isolates shared registry" `Quick
          test_pool_ns_isolates_metrics;
        Alcotest.test_case "timer rotation drops nothing" `Slow
          test_fleet_rotates_without_drops;
        Alcotest.test_case "detections trigger reactive rotation" `Quick
          test_fleet_reactive_rotation;
        Alcotest.test_case "fleet metrics registered" `Quick
          test_fleet_metrics_registered;
      ]
      @ props );
  ]
