(* The incremental-rerandomization battery: differential proof that the
   per-function codegen cache is invisible in the output.

   The contract under test ({!R2c_core.Pipeline.compile_incremental}):
   at any coordinates, the incrementally rebuilt image fingerprints
   byte-identical to a cold compile — across the whole Oracle config
   matrix, under random IR edits and seed moves (QCheck), and through
   the replay and fleet harnesses. The cache traffic counters are pinned
   alongside: rotations hit everything, a one-function edit misses
   exactly that function, and any body-level coordinate move (config,
   body seed, machine description) misses everything. A deliberately
   poisoned entry must be caught by both the equality gate and the
   translation validator. *)

module Q = QCheck
module Pipeline = R2c_core.Pipeline
module Dconfig = R2c_core.Dconfig
module Incremental = R2c_compiler.Incremental
module Mdesc = R2c_compiler.Mdesc
module Emit = R2c_compiler.Emit
module Oracle = R2c_fuzz.Oracle
module Genprog = R2c_workloads.Genprog
module Image = R2c_machine.Image
module Tval = R2c_analysis.Tval
module RTrace = R2c_replay.Trace
module Record = R2c_replay.Record
module Replayer = R2c_replay.Replayer

let fp = Image.fingerprint

let coords cfg body_seed link_seed = { Pipeline.cfg; body_seed; link_seed }

let nfuncs (p : Ir.program) = List.length p.Ir.funcs

(* Instrumentation may synthesize helper functions (check handlers and
   the like), and every instrumented function is a cache entry — so
   "misses everything" is counted against the instrumented program. *)
let ninstr cfg body_seed p = nfuncs (fst (Pipeline.instrument ~seed:body_seed cfg p))

(* Single-function IR edits that perturb exactly one diversification
   slice: neither changes the program's call-site population, so the
   shared BTRA stream is consumed identically and every other function's
   cache key survives. *)
let edit_nvars (p : Ir.program) idx =
  let victim = List.nth p.Ir.funcs (idx mod nfuncs p) in
  let funcs =
    List.map
      (fun (f : Ir.func) -> if f == victim then { f with Ir.nvars = f.nvars + 1 } else f)
      p.Ir.funcs
  in
  ({ p with Ir.funcs }, victim.Ir.name)

let bump_add_const body =
  let hit = ref false in
  let body' =
    List.map
      (function
        | Ir.Binop (v, Ir.Add, a, Ir.Const c) when not !hit ->
            hit := true;
            Ir.Binop (v, Ir.Add, a, Ir.Const (c + 1))
        | i -> i)
      body
  in
  (body', !hit)

let edit_const (p : Ir.program) idx =
  let victim = List.nth p.Ir.funcs (idx mod nfuncs p) in
  let changed = ref false in
  let funcs =
    List.map
      (fun (f : Ir.func) ->
        if f == victim then
          {
            f with
            Ir.blocks =
              List.map
                (fun (b : Ir.block) ->
                  if !changed then b
                  else
                    let body', hit = bump_add_const b.Ir.body in
                    if hit then begin
                      changed := true;
                      { b with Ir.body = body' }
                    end
                    else b)
                f.Ir.blocks;
          }
        else f)
      p.Ir.funcs
  in
  if !changed then ({ p with Ir.funcs }, victim.Ir.name) else edit_nvars p idx

(* --- steady-state rotation: relink-only, byte-identical ------------- *)

let test_rotation_identity () =
  let p = Genprog.generate ~seed:5 ~funcs:24 in
  let cfg = Dconfig.full () in
  let r = Pipeline.rerand_create () in
  let warm, st0 = Pipeline.compile_incremental r (coords cfg 3 (Some 100)) p in
  Alcotest.(check int) "warm build compiles every function" (ninstr cfg 3 p)
    st0.Incremental.misses;
  Alcotest.(check string) "warm build == cold compile"
    (fp (Pipeline.compile_cold (coords cfg 3 (Some 100)) p))
    (fp warm);
  for ls = 101 to 104 do
    let c = coords cfg 3 (Some ls) in
    let img, st = Pipeline.compile_incremental r c p in
    Alcotest.(check int)
      (Printf.sprintf "rotation %d recompiles nothing" ls)
      0 st.Incremental.misses;
    Alcotest.(check string)
      (Printf.sprintf "rotation %d == cold compile" ls)
      (fp (Pipeline.compile_cold c p))
      (fp img)
  done

(* Rebuilding at identical coordinates is also a pure relink (the memo
   path), and the cache grows only on misses. *)
let test_same_coords_all_hits () =
  let p = Genprog.generate ~seed:9 ~funcs:12 in
  let c = coords (Dconfig.full ()) 3 (Some 50) in
  let r = Pipeline.rerand_create () in
  let img1, _ = Pipeline.compile_incremental r c p in
  let size1 = Incremental.size (Pipeline.rerand_cache r) in
  let img2, st = Pipeline.compile_incremental r c p in
  Alcotest.(check int) "no recompiles" 0 st.Incremental.misses;
  Alcotest.(check int) "cache did not grow" size1
    (Incremental.size (Pipeline.rerand_cache r));
  Alcotest.(check string) "same image" (fp img1) (fp img2)

(* --- the Oracle config matrix: rotate + edit at every point ---------- *)

let test_matrix_identity () =
  let p = Genprog.generate ~seed:7 ~funcs:10 in
  List.iter
    (fun (name, cfg) ->
      let r = Pipeline.rerand_create () in
      let _, st0 = Pipeline.compile_incremental r (coords cfg 3 (Some 7)) p in
      Alcotest.(check int) (name ^ ": warm misses") (ninstr cfg 3 p)
        st0.Incremental.misses;
      let c1 = coords cfg 3 (Some 8) in
      let img1, st1 = Pipeline.compile_incremental r c1 p in
      Alcotest.(check int) (name ^ ": rotation misses") 0 st1.Incremental.misses;
      Alcotest.(check string)
        (name ^ ": rotation == cold")
        (fp (Pipeline.compile_cold c1 p))
        (fp img1);
      let p2, victim = edit_const p 5 in
      let c2 = coords cfg 3 (Some 9) in
      let img2, st2 = Pipeline.compile_incremental r c2 p2 in
      Alcotest.(check int) (name ^ ": edit misses one") 1 st2.Incremental.misses;
      Alcotest.(check (list string)) (name ^ ": edit missed the victim") [ victim ]
        st2.Incremental.missed;
      Alcotest.(check string)
        (name ^ ": edit == cold")
        (fp (Pipeline.compile_cold c2 p2))
        (fp img2))
    Oracle.matrix

(* --- cache invalidation: every body-level coordinate must miss ------- *)

let test_invalidation () =
  let p = Genprog.generate ~seed:13 ~funcs:8 in
  let full = Dconfig.full () in
  let r = Pipeline.rerand_create () in
  let _ = Pipeline.compile_incremental r (coords full 3 (Some 5)) p in
  (* Config change: every slice digest moves. *)
  let _, st = Pipeline.compile_incremental r (coords Dconfig.full_checked 3 (Some 5)) p in
  Alcotest.(check int) "config change misses all"
    (ninstr Dconfig.full_checked 3 p)
    st.Incremental.misses;
  (* Body-seed change: instrumentation re-randomizes, every key moves. *)
  let _, st = Pipeline.compile_incremental r (coords full 4 (Some 5)) p in
  Alcotest.(check int) "body-seed change misses all" (ninstr full 4 p)
    st.Incremental.misses;
  (* Returning to cached coordinates hits again: invalidation is keyed,
     not destructive. *)
  let _, st = Pipeline.compile_incremental r (coords full 3 (Some 6)) p in
  Alcotest.(check int) "original coordinates still cached" 0 st.Incremental.misses;
  (* Machine-description change: the mdesc fingerprint is in every key. *)
  let c = coords full 3 (Some 6) in
  let img, _, st, _ =
    Pipeline.compile_incremental_with_meta ~mdesc:Mdesc.x86_64_r15 r c p
  in
  Alcotest.(check int) "mdesc change misses all" (ninstr full 3 p)
    st.Incremental.misses;
  Alcotest.(check string) "mdesc rebuild == cold at same mdesc"
    (fp (Pipeline.compile_cold ~mdesc:Mdesc.x86_64_r15 c p))
    (fp img)

(* --- stale-cache plant: equality gate and Tval both catch it --------- *)

let twist_func (f : Ir.func) =
  let changed = ref false in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        if !changed then b
        else
          let body', hit = bump_add_const b.Ir.body in
          if hit then begin
            changed := true;
            { b with Ir.body = body' }
          end
          else b)
      f.Ir.blocks
  in
  if !changed then Some { f with Ir.blocks } else None

let test_stale_plant_caught () =
  let p = Genprog.generate ~seed:21 ~funcs:10 in
  let cfg = Dconfig.full () in
  let c0 = coords cfg 3 (Some 30) in
  let r = Pipeline.rerand_create () in
  let _ = Pipeline.compile_incremental r c0 p in
  (* Reconstruct the coordinates' instrumented program and opts — the
     exact keying context — and plant a miscompiled body (one Add
     constant off by one) under some function's true key. *)
  let ip, opts = Pipeline.instrument ~seed:3 cfg p in
  let victim, twisted =
    match
      List.filter_map
        (fun f -> match twist_func f with Some t -> Some (f, t) | None -> None)
        ip.Ir.funcs
    with
    | (f, t) :: _ -> (f, t)
    | [] -> Alcotest.fail "no twistable function in the generated program"
  in
  let payload = Emit.emit_func_meta ~opts twisted in
  Incremental.poison (Pipeline.rerand_cache r)
    ~opts ~salt:(Pipeline.salt_of_coords c0) victim ~payload;
  (* The next rotation links the stale body without recompiling... *)
  let c1 = coords cfg 3 (Some 31) in
  let img, meta, st, ip1 = Pipeline.compile_incremental_with_meta r c1 p in
  Alcotest.(check int) "plant is a cache hit" 0 st.Incremental.misses;
  (* ...the byte-identity gate catches it... *)
  Alcotest.(check bool) "equality gate catches the plant" false
    (String.equal (fp (Pipeline.compile_cold c1 p)) (fp img));
  (* ...and so does the translation validator. *)
  let report = Tval.validate ~img ~meta ip1 in
  Alcotest.(check bool) "Tval flags the planted body" true
    (report.Tval.findings <> []);
  (* A fresh handle at the same coordinates is clean again. *)
  let r2 = Pipeline.rerand_create () in
  let clean, _ = Pipeline.compile_incremental r2 c1 p in
  Alcotest.(check string) "fresh cache is clean"
    (fp (Pipeline.compile_cold c1 p))
    (fp clean)

(* --- QCheck: random edit/seed/config walks vs cold compiles ---------- *)

let prop_incremental_equals_cold =
  Q.Test.make ~count:10 ~name:"incremental == cold under random edits and moves"
    Q.(triple (int_bound 1_000) (int_bound 100) (int_bound 1_000))
    (fun (prog_seed, cfg_idx, edit_seed) ->
      let _, cfg = List.nth Oracle.matrix (cfg_idx mod List.length Oracle.matrix) in
      let p = Genprog.generate ~seed:prog_seed ~funcs:(6 + (prog_seed mod 6)) in
      let body_seed = 1 + (edit_seed mod 5) in
      let r = Pipeline.rerand_create () in
      let _, st0 = Pipeline.compile_incremental r (coords cfg body_seed (Some 1)) p in
      let ok0 = st0.Incremental.misses = ninstr cfg body_seed p in
      (* Two link rotations: all hits, final one checked against cold. *)
      let _ = Pipeline.compile_incremental r (coords cfg body_seed (Some 2)) p in
      let c_rot = coords cfg body_seed (Some 3) in
      let img_rot, st_rot = Pipeline.compile_incremental r c_rot p in
      let ok_rot =
        st_rot.Incremental.misses = 0
        && String.equal (fp (Pipeline.compile_cold c_rot p)) (fp img_rot)
      in
      (* A random single-function edit: exactly one miss, still cold. *)
      let p2, victim =
        if edit_seed mod 2 = 0 then edit_nvars p edit_seed else edit_const p edit_seed
      in
      let c_edit = coords cfg body_seed (Some 4) in
      let img_edit, st_edit = Pipeline.compile_incremental r c_edit p2 in
      let ok_edit =
        st_edit.Incremental.misses = 1
        && st_edit.Incremental.missed = [ victim ]
        && String.equal (fp (Pipeline.compile_cold c_edit p2)) (fp img_edit)
      in
      (* A body-seed move: everything recompiles, still cold. *)
      let c_move = coords cfg (body_seed + 7) (Some 4) in
      let img_move, st_move = Pipeline.compile_incremental r c_move p2 in
      let ok_move =
        st_move.Incremental.misses = ninstr cfg (body_seed + 7) p2
        && String.equal (fp (Pipeline.compile_cold c_move p2)) (fp img_move)
      in
      ok0 && ok_rot && ok_edit && ok_move)

(* --- replay regression: traces replayed on incremental rebuilds ------ *)

(* The echo workload test_replay records: enough builtin traffic for a
   meaningful profile, small enough to capture in-process. *)
let echo_prog ~rounds =
  let module B = Builder in
  let main = B.func "main" ~nparams:0 in
  let s_i = B.slot main 8 in
  let i_addr = B.slot_addr main s_i in
  let s_buf = B.slot main 64 in
  B.store main i_addr 0 (Ir.Const 0);
  let header = B.new_block main and body = B.new_block main and stop = B.new_block main in
  B.br main header;
  B.switch_to main header;
  let iv = B.load main i_addr 0 in
  let cmp = B.cmp main Ir.Lt iv (Ir.Const rounds) in
  B.cond_br main cmp body stop;
  B.switch_to main body;
  let n = B.call main (Ir.Builtin "read_input") [ B.slot_addr main s_buf; Ir.Const 64 ] in
  B.call_void main (Ir.Builtin "print_int") [ n ];
  let iv2 = B.load main i_addr 0 in
  let iv3 = B.binop main Ir.Add iv2 (Ir.Const 1) in
  B.store main i_addr 0 iv3;
  B.br main header;
  B.switch_to main stop;
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main" [ B.finish main ] []

let test_replay_incremental () =
  let program = echo_prog ~rounds:6 in
  let meta =
    { RTrace.workload = "echo"; config = "full"; seed = 3; machine = "EPYC Rome";
      fuel = 2_000_000 }
  in
  let t =
    match Record.capture ~fuel:2_000_000 ~meta ~program ~inputs:[ "ab"; "xyz" ] () with
    | Ok t -> t
    | Error e -> Alcotest.fail ("capture failed: " ^ e)
  in
  let cfg = RTrace.config_of_name t.RTrace.meta.RTrace.config in
  let r = Pipeline.rerand_create () in
  (* Warm the cache at a rotated link seed, then rebuild at the trace's
     recorded coordinates: the replayed image is a pure relink. *)
  let _ =
    Pipeline.compile_incremental r
      (coords cfg t.RTrace.meta.RTrace.seed (Some 42))
      t.RTrace.program
  in
  let image, st =
    Pipeline.compile_incremental r
      (coords cfg t.RTrace.meta.RTrace.seed None)
      t.RTrace.program
  in
  Alcotest.(check int) "recorded-coordinate rebuild is relink-only" 0
    st.Incremental.misses;
  match Replayer.check ~image t with
  | Error e -> Alcotest.fail ("replay failed: " ^ e)
  | Ok v ->
      Alcotest.(check (list string)) "fidelity gate passes on the incremental rebuild"
        [] v.Replayer.failures

(* The on-disk corpus, when present (bench/replays ships two traces):
   every trace must pass its fidelity gate on an incrementally rebuilt
   image at the recorded coordinates. *)
let corpus_dir () =
  List.find_opt Sys.file_exists [ "../bench/replays"; "bench/replays" ]

let test_replay_corpus_incremental () =
  match corpus_dir () with
  | None -> ()  (* corpus not shipped to this checkout; covered above *)
  | Some dir ->
      List.iter
        (fun path ->
          match RTrace.load path with
          | Error e -> Alcotest.fail (Filename.basename path ^ ": " ^ e)
          | Ok t when t.RTrace.meta.RTrace.config = "baseline" -> ()
          | Ok t ->
              let cfg = RTrace.config_of_name t.RTrace.meta.RTrace.config in
              let r = Pipeline.rerand_create () in
              let image, _ =
                Pipeline.compile_incremental r
                  (coords cfg t.RTrace.meta.RTrace.seed None)
                  t.RTrace.program
              in
              (match Replayer.check ~image t with
              | Error e -> Alcotest.fail (Filename.basename path ^ ": " ^ e)
              | Ok v ->
                  Alcotest.(check (list string))
                    (Filename.basename path ^ ": fidelity on incremental rebuild")
                    [] v.Replayer.failures))
        (RTrace.files ~dir)

(* --- fleet: epoch rotations through the cache drop nothing ----------- *)

let test_fleet_incremental_rotation () =
  let r =
    R2c_harness.Fleetbench.run ~seed:11 ~requests:10_000 ~shards:2
      ~epoch_cycles:1_500_000 ~incremental:true ()
  in
  let f = r.R2c_harness.Fleetbench.fleet in
  Alcotest.(check bool) "campaign rotated" true
    (f.R2c_runtime.Fleet.rotations >= 1);
  Alcotest.(check int) "rotation drops zero with incremental builds" 0
    f.R2c_runtime.Fleet.rotation_drops;
  Alcotest.(check int) "no canary failures" 0 f.R2c_runtime.Fleet.canary_failures

let suite =
  [
    ( "rerand",
      [
        Alcotest.test_case "rotation identity" `Quick test_rotation_identity;
        Alcotest.test_case "same coordinates all hits" `Quick test_same_coords_all_hits;
        Alcotest.test_case "config matrix identity" `Slow test_matrix_identity;
        Alcotest.test_case "invalidation" `Quick test_invalidation;
        Alcotest.test_case "stale plant caught" `Quick test_stale_plant_caught;
        QCheck_alcotest.to_alcotest prop_incremental_equals_cold;
        Alcotest.test_case "replay on incremental rebuild" `Quick
          test_replay_incremental;
        Alcotest.test_case "replay corpus on incremental rebuilds" `Slow
          test_replay_corpus_incremental;
        Alcotest.test_case "fleet rotation with incremental builds" `Slow
          test_fleet_incremental_rotation;
      ] );
  ]
