module Defenses = R2c_defenses.Defenses
module Oracle = R2c_attacks.Oracle
module Vulnapp = R2c_workloads.Vulnapp
open R2c_machine

let test_all_models_listed () =
  Alcotest.(check (list string)) "table order"
    [ "unprotected"; "aslr"; "CodeArmor"; "TASR"; "StackArmor"; "Readactor"; "kR^X"; "R2C" ]
    (List.map (fun (d : Defenses.t) -> d.Defenses.name) Defenses.all)

let test_cph_hides_function_pointers () =
  (* Under Readactor's code-pointer hiding, the service table holds
     trampoline addresses, not function entries — yet dispatch still
     works (the benign-run test elsewhere). *)
  let img = Defenses.build_vulnapp Defenses.readactor ~seed:7 in
  let table = Image.symbol img "g_service_table" in
  let entries =
    List.filter_map
      (fun (f : Image.func_info) ->
        if f.Image.is_booby_trap then None else Some (f.Image.fname, f.Image.entry))
      img.Image.funcs
  in
  let handler_entries =
    List.filter_map
      (fun (n, e) -> if String.length n >= 7 && String.sub n 0 7 = "handler" then Some e else None)
      entries
  in
  (* Resolve the init words for the table from the image's data init. *)
  let slot_values =
    List.filter_map
      (fun (addr, v) -> if addr >= table && addr < table + 32 then Some v else None)
      (Lazy.force img.Image.data_words)
  in
  Alcotest.(check int) "four slots" 4 (List.length slot_values);
  List.iter
    (fun v ->
      Alcotest.(check bool) "slot is not a raw handler entry" false
        (List.mem v handler_entries);
      Alcotest.(check bool) "slot is in text (a trampoline)" true
        (Addr.region_of v = Addr.Text))
    slot_values

let test_cph_trampolines_execute () =
  let img = Defenses.build_vulnapp Defenses.codearmor ~seed:9 in
  let p = Process.start img in
  match Process.run p with
  | Process.Exited 0 -> ()
  | o -> Alcotest.failf "CPH dispatch broke the program: %s" (Process.outcome_to_string o)

let test_unprotected_has_readable_text () =
  let img = Defenses.build_vulnapp Defenses.unprotected ~seed:3 in
  Alcotest.(check bool) "rx text" true (Perm.equal img.Image.text_perm Perm.rx)

let test_xom_models () =
  List.iter
    (fun (d : Defenses.t) ->
      let img = Defenses.build_vulnapp d ~seed:3 in
      Alcotest.(check bool) (d.Defenses.name ^ " execute-only") true
        (Perm.equal img.Image.text_perm Perm.xo))
    [ Defenses.codearmor; Defenses.readactor; Defenses.krx; Defenses.r2c ]

let test_aslr_models_slide () =
  let a = Defenses.build_vulnapp Defenses.aslr ~seed:1 in
  let b = Defenses.build_vulnapp Defenses.aslr ~seed:2 in
  Alcotest.(check bool) "text slides differ" true (a.Image.text_base <> b.Image.text_base)

let test_krx_single_decoy () =
  (* kR^X: exactly one decoy after the return address, none before. *)
  match Defenses.krx.Defenses.cfg.R2c_core.Dconfig.btra with
  | Some b ->
      Alcotest.(check int) "total" 1 b.R2c_core.Dconfig.total;
      Alcotest.(check int) "max post" 1 b.R2c_core.Dconfig.max_post
  | None -> Alcotest.fail "kR^X must use decoys"

let test_tasr_relink_invalidate () =
  (* The TASR oracle semantics: a send crosses the I/O boundary and the
     layout the attacker observed is gone. *)
  let d = Defenses.tasr in
  let counter = ref 0 in
  let relink () =
    incr counter;
    Defenses.build_vulnapp d ~seed:(100 + !counter)
  in
  let target =
    Oracle.attach ~relink ~break_sym:Vulnapp.break_symbol (Defenses.build_vulnapp d ~seed:50)
  in
  (match Oracle.to_break target with `Break -> () | `Done _ -> Alcotest.fail "no break");
  let before = Image.symbol target.Oracle.img "main" in
  Oracle.send target "x";
  let after = Image.symbol target.Oracle.img "main" in
  Alcotest.(check bool) "layout re-randomized on send" true (before <> after)

let suite =
  [
    ( "defenses",
      [
        Alcotest.test_case "models listed" `Quick test_all_models_listed;
        Alcotest.test_case "CPH hides pointers" `Quick test_cph_hides_function_pointers;
        Alcotest.test_case "CPH trampolines execute" `Quick test_cph_trampolines_execute;
        Alcotest.test_case "unprotected rx text" `Quick test_unprotected_has_readable_text;
        Alcotest.test_case "xom models" `Quick test_xom_models;
        Alcotest.test_case "aslr slides" `Quick test_aslr_models_slide;
        Alcotest.test_case "kR^X single decoy" `Quick test_krx_single_decoy;
        Alcotest.test_case "TASR relink on send" `Quick test_tasr_relink_invalidate;
      ] );
  ]
