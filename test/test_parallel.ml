(* The Domain-pool contract: Parallel.map is an observable drop-in for
   List.map — same results, same order, lowest-index exception — at every
   job count, including forced multi-domain runs on single-core hosts. *)

module Parallel = R2c_util.Parallel

exception Boom of int

let test_map_matches_list_map () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * 37) land 0xffff in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Parallel.map ~jobs f xs))
    [ 1; 2; 4; 7 ]

let test_ordering_under_skew () =
  (* Uneven per-item work so domains finish out of claim order; results
     must still land in input order. *)
  let xs = List.init 40 (fun i -> i) in
  let f x =
    let n = if x mod 7 = 0 then 40_000 else 100 in
    let acc = ref x in
    for _ = 1 to n do
      acc := ((!acc * 1103515245) + 12345) land 0x3fffffff
    done;
    (x, !acc)
  in
  Alcotest.(check bool)
    "order preserved" true
    (Parallel.map ~jobs:4 f xs = List.map f xs)

let test_mapi_and_tasks () =
  Alcotest.(check (list int))
    "mapi" [ 10; 21; 32 ]
    (Parallel.mapi ~jobs:2 (fun i x -> x + i) [ 10; 20; 30 ]);
  Alcotest.(check (list string))
    "tasks in thunk order" [ "a"; "b"; "c" ]
    (Parallel.tasks ~jobs:2 [ (fun () -> "a"); (fun () -> "b"); (fun () -> "c") ])

let test_lowest_index_exception () =
  (* Items 3 and 7 both raise; the caller must see item 3's exception
     regardless of which domain hit its item first. *)
  let f x = if x = 3 || x = 7 then raise (Boom x) else x in
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs f (List.init 10 (fun i -> i)) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n ->
          Alcotest.(check int) (Printf.sprintf "jobs=%d raises item 3" jobs) 3 n)
    [ 1; 4 ]

let test_nested_map_degrades_serially () =
  (* A map inside a map must not spawn a second domain pool; it runs
     serially in the worker and still returns correct results. *)
  let inner y = y * y in
  let outer x = Parallel.map ~jobs:4 inner [ x; x + 1 ] in
  Alcotest.(check (list (list int)))
    "nested" [ [ 0; 1 ]; [ 1; 4 ]; [ 4; 9 ] ]
    (Parallel.map ~jobs:4 outer [ 0; 1; 2 ])

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 42 ] (Parallel.map ~jobs:4 (fun x -> x + 1) [ 41 ])

let test_default_jobs_positive () =
  Alcotest.(check bool) "default_jobs >= 1" true (Parallel.default_jobs () >= 1)

let suite =
  [
    ( "parallel",
      [
        Alcotest.test_case "map = List.map at every job count" `Quick test_map_matches_list_map;
        Alcotest.test_case "ordering under skewed work" `Quick test_ordering_under_skew;
        Alcotest.test_case "mapi + tasks" `Quick test_mapi_and_tasks;
        Alcotest.test_case "lowest-index exception wins" `Quick test_lowest_index_exception;
        Alcotest.test_case "nested map degrades serially" `Quick test_nested_map_degrades_serially;
        Alcotest.test_case "empty + singleton" `Quick test_empty_and_singleton;
        Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_positive;
      ] );
  ]
