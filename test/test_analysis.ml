(* Tests for the attacker-side value clustering and the execution tracer. *)

module Cluster = R2c_attacks.Cluster
open R2c_machine

let test_cluster_labels () =
  let values =
    [
      0x400123; 0x400456; 0x4003ab;  (* code *)
      0x5555_5555_0010; 0x5555_5555_2040;  (* static data *)
      0x5555_6000_1000; 0x5555_6000_2000; 0x5555_6002_0008;  (* heap *)
      0x7fff_ffff_e010; 0x7fff_ffff_e120;  (* stack *)
      42; 7;  (* small integers, not pointers *)
    ]
  in
  let cs = Cluster.analyze values in
  let find l = List.find_opt (fun c -> c.Cluster.label = l) cs in
  (match find Cluster.Code with
  | Some c -> Alcotest.(check int) "code members" 3 (List.length c.Cluster.members)
  | None -> Alcotest.fail "no code cluster");
  (match find Cluster.Heap_like with
  | Some c -> Alcotest.(check int) "heap members" 3 (List.length c.Cluster.members)
  | None -> Alcotest.fail "no heap cluster");
  (match find Cluster.Static_data with
  | Some c -> Alcotest.(check int) "data members" 2 (List.length c.Cluster.members)
  | None -> Alcotest.fail "no data cluster");
  (match find Cluster.Stack_like with
  | Some c -> Alcotest.(check int) "stack members" 2 (List.length c.Cluster.members)
  | None -> Alcotest.fail "no stack cluster");
  Alcotest.(check (list int)) "heap candidates"
    [ 0x5555_6000_1000; 0x5555_6000_2000; 0x5555_6002_0008 ]
    (Cluster.heap_candidates cs);
  Alcotest.(check int) "code candidates" 3 (List.length (Cluster.code_candidates cs))

let test_cluster_single_mmap_cluster_is_heap () =
  (* With only one mmap-range cluster the attacker treats it as heap and
     dereferences to find out. *)
  let cs = Cluster.analyze [ 0x5555_6000_1000; 0x5555_6000_1200 ] in
  Alcotest.(check int) "heap candidates" 2 (List.length (Cluster.heap_candidates cs))

let test_cluster_discards_small_ints () =
  let cs = Cluster.analyze [ 1; 2; 3; 0xffff ] in
  Alcotest.(check int) "no clusters" 0 (List.length cs)

let test_cluster_empty () =
  let cs = Cluster.analyze [] in
  Alcotest.(check int) "no clusters" 0 (List.length cs);
  Alcotest.(check (list int)) "no heap candidates" [] (Cluster.heap_candidates cs);
  Alcotest.(check (list int)) "no code candidates" [] (Cluster.code_candidates cs)

let test_cluster_single_value () =
  (* One mmap-range value: a singleton cluster, labelled heap, no exception. *)
  let cs = Cluster.analyze [ 0x5555_6000_1000 ] in
  Alcotest.(check int) "one cluster" 1 (List.length cs);
  Alcotest.(check (list int)) "the value is a heap candidate" [ 0x5555_6000_1000 ]
    (Cluster.heap_candidates cs)

let test_cluster_on_live_leak () =
  (* The analysis applied to an actual R2C frame finds a heap cluster that
     contains the BTDPs — the contamination the defense engineers. *)
  let img =
    R2c_defenses.Defenses.build_vulnapp R2c_defenses.Defenses.r2c ~seed:6
  in
  let target =
    R2c_attacks.Oracle.attach ~break_sym:R2c_workloads.Vulnapp.break_symbol img
  in
  (match R2c_attacks.Oracle.to_break target with
  | `Break -> ()
  | `Done _ -> Alcotest.fail "no break");
  (match R2c_attacks.Oracle.resume_to_break target with
  | `Break -> ()
  | `Done _ -> Alcotest.fail "no second break");
  let _, values = R2c_attacks.Oracle.leak_stack target ~words:512 in
  let cs = Cluster.analyze (Array.to_list values) in
  let heap = Cluster.heap_candidates cs in
  Alcotest.(check bool) "heap cluster found" true (heap <> []);
  let guards =
    Mem.guard_page_addrs target.R2c_attacks.Oracle.proc.Process.cpu.Cpu.mem
  in
  Alcotest.(check bool) "cluster contaminated with BTDPs" true
    (List.exists (fun v -> List.mem (Addr.page_base v) guards) heap)

(* --- tracer --- *)

let traced_image () =
  R2c_compiler.Driver.compile (Samples.fib_prog 5)

let test_trace_records_execution () =
  let cpu = Loader.load ~profile:Cost.epyc_rome (traced_image ()) in
  let tr = Trace.create ~capacity:64 in
  (match Trace.run tr cpu ~fuel:1_000_000 with
  | Cpu.Halted -> ()
  | r -> Alcotest.failf "unexpected %s" (match r with Cpu.Fuel_exhausted -> "fuel" | _ -> "fault"));
  let rs = Trace.records tr in
  Alcotest.(check int) "ring full" 64 (List.length rs);
  (* The final record is the halt. *)
  (match List.rev rs with
  | last :: _ -> Alcotest.(check bool) "ends with hlt" true (last.Trace.insn = Insn.Halt)
  | [] -> Alcotest.fail "no records");
  (* Symbols are attached for compiled code. *)
  Alcotest.(check bool) "symbols present" true
    (List.exists (fun r -> r.Trace.symbol = Some "fib") rs)

let test_trace_capacity_bound () =
  let cpu = Loader.load ~profile:Cost.epyc_rome (traced_image ()) in
  let tr = Trace.create ~capacity:8 in
  ignore (Trace.run tr cpu ~fuel:1_000_000);
  Alcotest.(check int) "bounded" 8 (List.length (Trace.records tr))

let test_trace_order () =
  let cpu = Loader.load ~profile:Cost.epyc_rome (traced_image ()) in
  let tr = Trace.create ~capacity:16 in
  ignore (Trace.run tr cpu ~fuel:1_000_000);
  (* Records are in execution order: a ret is eventually followed by the
     halt in _start; pp_tail renders without raising. *)
  Alcotest.(check bool) "tail non-empty" true (String.length (Trace.pp_tail tr ~n:8) > 0)

(* --- dump --- *)

let test_dump_summary_and_listing () =
  let img =
    R2c_defenses.Defenses.build_vulnapp R2c_defenses.Defenses.r2c ~seed:3
  in
  let s = Dump.summary img in
  Alcotest.(check bool) "mentions xom" true
    (String.length s > 0 &&
     (let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      contains s "--x"));
  let full = Dump.image img in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "booby traps annotated" true (contains full "BOOBY TRAP FUNCTION");
  Alcotest.(check bool) "batch loads annotated" true (contains full "BTRA batch load");
  Alcotest.(check bool) "process_request present" true (contains full "<process_request>")

let test_dump_push_annotations () =
  let img =
    R2c_defenses.Defenses.build_vulnapp
      { R2c_defenses.Defenses.r2c with
        R2c_defenses.Defenses.cfg = R2c_core.Dconfig.full ~setup:R2c_core.Dconfig.Push () }
      ~seed:3
  in
  let full = Dump.image img in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "BTRA pushes annotated" true (contains full "BTRA -> booby trap");
  Alcotest.(check bool) "RA pre-write annotated" true
    (contains full "return address pre-write")

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "cluster labels" `Quick test_cluster_labels;
        Alcotest.test_case "single mmap cluster" `Quick test_cluster_single_mmap_cluster_is_heap;
        Alcotest.test_case "small ints discarded" `Quick test_cluster_discards_small_ints;
        Alcotest.test_case "empty input" `Quick test_cluster_empty;
        Alcotest.test_case "single value" `Quick test_cluster_single_value;
        Alcotest.test_case "cluster on live leak" `Quick test_cluster_on_live_leak;
        Alcotest.test_case "trace records" `Quick test_trace_records_execution;
        Alcotest.test_case "trace capacity" `Quick test_trace_capacity_bound;
        Alcotest.test_case "trace order" `Quick test_trace_order;
        Alcotest.test_case "dump summary/listing" `Quick test_dump_summary_and_listing;
        Alcotest.test_case "dump push annotations" `Quick test_dump_push_annotations;
      ] );
  ]
