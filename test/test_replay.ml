(* Record-reduce-replay: the builtin-boundary recorder, the .r2cr trace
   format, the fidelity-gated replayer, and trace-level delta debugging. *)

open R2c_machine
module B = Builder
module RTrace = R2c_replay.Trace
module Record = R2c_replay.Record
module Replayer = R2c_replay.Replayer
module Reduce = R2c_replay.Reduce

(* A bounded echo server: [rounds] iterations of read-then-print. With
   fewer queued payloads than rounds, the tail reads return 0 — exactly
   the chatter the reducer must learn to drop. *)
let echo_prog ~rounds =
  let main = B.func "main" ~nparams:0 in
  let s_buf = B.slot main 64 in
  let s_i = B.slot main 8 in
  let i_addr = B.slot_addr main s_i in
  B.store main i_addr 0 (Ir.Const 0);
  let header = B.new_block main
  and body = B.new_block main
  and stop = B.new_block main in
  B.br main header;
  B.switch_to main header;
  let iv = B.load main i_addr 0 in
  let cmp = B.cmp main Ir.Lt iv (Ir.Const rounds) in
  B.cond_br main cmp body stop;
  B.switch_to main body;
  let n = B.call main (Ir.Builtin "read_input") [ B.slot_addr main s_buf; Ir.Const 64 ] in
  B.call_void main (Ir.Builtin "print_int") [ n ];
  let iv2 = B.load main i_addr 0 in
  let iv3 = B.binop main Ir.Add iv2 (Ir.Const 1) in
  B.store main i_addr 0 iv3;
  B.br main header;
  B.switch_to main stop;
  B.ret main (Some (Ir.Const 0));
  B.program ~main:"main" [ B.finish main ] []

let meta ?(config = "full") ?(seed = 3) workload =
  { RTrace.workload; config; seed; machine = "EPYC Rome"; fuel = 2_000_000 }

let capture ?(rounds = 6) ?(inputs = [ "ab"; "xyz" ]) ?config ?seed () =
  match
    Record.capture ~fuel:2_000_000
      ~meta:(meta ?config ?seed "echo")
      ~program:(echo_prog ~rounds) ~inputs ()
  with
  | Ok t -> t
  | Error e -> Alcotest.fail ("capture failed: " ^ e)

let count_spans pred (t : RTrace.t) =
  let rec go acc = function
    | RTrace.Span s -> if pred s then acc + 1 else acc
    | RTrace.Feed _ -> acc
    | RTrace.Loop (body, _) -> List.fold_left go acc body
  in
  List.fold_left go 0 t.RTrace.events

(* --- recording --- *)

let test_capture_spans () =
  let t = capture () in
  (* 6 reads (2 delivered, 4 empty) and 6 prints from the loop itself,
     plus the diversified runtime's own allocation/guard-page chatter. *)
  Alcotest.(check int) "delivered reads" 2
    (count_spans (fun s -> s.RTrace.builtin = "read_input" && s.RTrace.rax > 0) t);
  Alcotest.(check int) "empty reads" 4
    (count_spans (fun s -> s.RTrace.builtin = "read_input" && s.RTrace.rax = 0) t);
  Alcotest.(check int) "prints" 6
    (count_spans (fun s -> s.RTrace.builtin = "print_int") t);
  Alcotest.(check bool) "runtime allocation chatter captured" true
    (count_spans (fun s -> s.RTrace.builtin = "malloc_pages") t > 0);
  Alcotest.(check (list string)) "feeds are the delivered payloads"
    [ "ab"; "xyz" ] (RTrace.feeds t);
  Alcotest.(check int) "clean exit recorded" 0 t.RTrace.expect.RTrace.e_exit;
  (* The tap stored the delivered bytes and the result register. *)
  let rec first_data = function
    | RTrace.Span s :: _ when s.RTrace.data <> None -> s
    | _ :: rest -> first_data rest
    | [] -> Alcotest.fail "no data span"
  in
  let s = first_data t.RTrace.events in
  Alcotest.(check (option string)) "payload bytes" (Some "ab") s.RTrace.data;
  Alcotest.(check int) "rax = delivered length" 2 s.RTrace.rax

let test_capture_deterministic () =
  let a = RTrace.to_string (capture ()) in
  let b = RTrace.to_string (capture ()) in
  Alcotest.(check string) "same capture byte-for-byte" a b

let test_recorder_tees_with_existing_observer () =
  (* An observer attached before the recorder keeps firing: the recorder
     tees itself over it instead of clobbering the slot. *)
  let external_steps = ref 0 in
  let t =
    match
      Record.capture ~fuel:2_000_000 ~meta:(meta "echo")
        ~prepare:(fun cpu ->
          Cpu.set_observer cpu
            (Some (fun ~rip:_ ~cycles:_ ~misses:_ ~called:_ -> incr external_steps)))
        ~program:(echo_prog ~rounds:4) ~inputs:[ "hi" ] ()
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "external observer still fired" true (!external_steps > 0);
  Alcotest.(check bool) "recorder captured spans" true (RTrace.span_count t > 0)

(* --- serialization --- *)

let test_fnv_known_values () =
  Alcotest.(check int64) "fnv empty" 0xcbf29ce484222325L (RTrace.output_hash "");
  Alcotest.(check int64) "fnv a" 0xaf63dc4c8601ec8cL (RTrace.output_hash "a")

let test_roundtrip () =
  let t = capture () in
  match RTrace.of_string (RTrace.to_string t) with
  | Error e -> Alcotest.fail ("reparse: " ^ e)
  | Ok t' ->
      Alcotest.(check string) "identical serialization" (RTrace.to_string t)
        (RTrace.to_string t');
      Alcotest.(check (list string)) "same feeds" (RTrace.feeds t) (RTrace.feeds t');
      Alcotest.(check int) "same size" (RTrace.size t) (RTrace.size t');
      Alcotest.(check int64) "same output hash" t.RTrace.expect.RTrace.e_output_hash
        t'.RTrace.expect.RTrace.e_output_hash

let test_roundtrip_reduced () =
  (* Feeds, dictionary and loops all survive the wire format. *)
  let t, _ = Reduce.run (capture ~rounds:12 ~inputs:(List.init 8 (fun _ -> "GET /x")) ()) in
  match RTrace.of_string (RTrace.to_string t) with
  | Error e -> Alcotest.fail ("reparse reduced: " ^ e)
  | Ok t' ->
      Alcotest.(check (list string)) "same feeds" (RTrace.feeds t) (RTrace.feeds t');
      Alcotest.(check string) "identical serialization" (RTrace.to_string t)
        (RTrace.to_string t')

let test_of_string_rejects () =
  let t = capture () in
  let good = RTrace.to_string t in
  let cases =
    [
      ("empty", "");
      ("header only", "{\"r2cr\":1}");
      ("not r2cr", "{\"r2cr\":2}\n{\"program\":\"\"}\n");
      ("bad header json", "{oops\n{\"program\":\"\"}\n");
      ( "bad program text",
        "{\"r2cr\":1,\"workload\":\"w\",\"config\":\"full\",\"seed\":1,\"machine\":\"EPYC \
         Rome\",\"fuel\":1000,\"expect\":{\"cycles\":1.0,\"insns\":1,\"accesses\":1,\"misses\":0,\"exit\":0,\"output_len\":0,\"output_hash\":\"cbf29ce484222325\"},\"dict\":[]}\n\
         {\"program\":\"not ir\"}\n" );
    ]
  in
  List.iter
    (fun (what, s) ->
      match RTrace.of_string s with
      | Ok _ -> Alcotest.fail ("accepted " ^ what)
      | Error _ -> ())
    cases;
  (* A dictionary index past the end is structural corruption. *)
  let bad = { t with RTrace.events = RTrace.Feed 99 :: t.RTrace.events } in
  match RTrace.of_string (RTrace.to_string bad) with
  | Ok _ -> Alcotest.fail "accepted out-of-range dictionary index"
  | Error e -> Alcotest.(check bool) "names the index" true (String.length e > 0);
  (match RTrace.of_string good with Ok _ -> () | Error e -> Alcotest.fail e)

let test_feeds_loop_expansion () =
  let t = capture () in
  let t =
    {
      t with
      RTrace.dict = [| "x"; "y" |];
      events = [ RTrace.Loop ([ RTrace.Feed 0; RTrace.Feed 1 ], 3) ];
    }
  in
  Alcotest.(check (list string)) "loop expands in order"
    [ "x"; "y"; "x"; "y"; "x"; "y" ] (RTrace.feeds t);
  Alcotest.(check int) "span_count expands too" 6 (RTrace.span_count t)

let test_save_load_files () =
  let dir = Filename.temp_file "r2cr" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let t = capture () in
  let path = Filename.concat dir "echo.r2cr" in
  RTrace.save ~path t;
  Alcotest.(check (list string)) "directory listing" [ path ] (RTrace.files ~dir);
  (match RTrace.load path with
  | Ok t' -> Alcotest.(check string) "load = save" (RTrace.to_string t) (RTrace.to_string t')
  | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "missing dir is empty" []
    (RTrace.files ~dir:(Filename.concat dir "nope"))

(* --- replay fidelity --- *)

let test_replay_reproduces () =
  let t = capture () in
  match Replayer.check t with
  | Ok v -> Alcotest.(check (list string)) "no failures" [] v.Replayer.failures
  | Error e -> Alcotest.fail e

let test_fidelity_breach_detected () =
  let t = capture () in
  let breach expect what sub =
    match Replayer.check { t with RTrace.expect } with
    | Error e -> Alcotest.fail e
    | Ok v ->
        Alcotest.(check bool) (what ^ " flagged") true
          (List.exists
             (fun f ->
               let n = String.length sub in
               String.length f >= n && String.sub f 0 n = sub)
             v.Replayer.failures)
  in
  let e = t.RTrace.expect in
  breach { e with RTrace.e_cycles = e.RTrace.e_cycles *. 1.5 } "cycles drift" "cycles";
  breach { e with RTrace.e_insns = e.RTrace.e_insns * 2 } "insn drift" "insns";
  breach { e with RTrace.e_output_hash = 0L } "output divergence" "output";
  breach { e with RTrace.e_exit = 7 } "exit mismatch" "exit"

let test_replay_under_other_configs () =
  (* The replay contract holds at other diversification coordinates:
     recording embeds the coordinates and replay recompiles under them. *)
  List.iter
    (fun config ->
      let t = capture ~config ~seed:11 () in
      match Replayer.check t with
      | Ok v ->
          Alcotest.(check (list string)) (config ^ " reproduces") [] v.Replayer.failures
      | Error e -> Alcotest.fail (config ^ ": " ^ e))
    [ "baseline"; "full-checked"; "btdp" ]

(* --- reduction --- *)

let test_reduce_preserves_semantics () =
  let raw = capture ~rounds:12 ~inputs:(List.init 8 (fun i -> Printf.sprintf "GET /%d" (i mod 2))) () in
  let reduced, rep = Reduce.run raw in
  (* Feeds — the replayed environment — are untouched by reduction. *)
  Alcotest.(check (list string)) "same feeds" (RTrace.feeds raw) (RTrace.feeds reduced);
  Alcotest.(check bool) "strictly smaller" true (RTrace.size reduced < RTrace.size raw);
  Alcotest.(check bool) "at least 30% smaller" true (Reduce.ratio rep >= 0.30);
  Alcotest.(check int) "report raw" (RTrace.size raw) rep.Reduce.raw_bytes;
  Alcotest.(check int) "report reduced" (RTrace.size reduced) rep.Reduce.reduced_bytes;
  (* Observational spans are gone; the dictionary is deduplicated. *)
  Alcotest.(check int) "prints dropped" 0
    (count_spans (fun s -> s.RTrace.builtin = "print_int") reduced);
  Alcotest.(check bool) "dict deduped" true (Array.length reduced.RTrace.dict <= 2);
  (* And the reduced trace still passes the gate it was reduced under. *)
  match Replayer.check reduced with
  | Ok v -> Alcotest.(check (list string)) "still reproduces" [] v.Replayer.failures
  | Error e -> Alcotest.fail e

let test_reduce_deterministic () =
  let mk () = fst (Reduce.run (capture ~rounds:10 ~inputs:[ "a"; "b"; "a"; "b" ] ())) in
  Alcotest.(check string) "same reduction byte-for-byte"
    (RTrace.to_string (mk ()))
    (RTrace.to_string (mk ()))

let test_reduce_budget_respected () =
  let raw = capture ~rounds:10 ~inputs:[ "a"; "b"; "a"; "b" ] () in
  let _, rep = Reduce.run ~max_checks:1 raw in
  Alcotest.(check bool) "oracle budget binds" true (rep.Reduce.checks <= 1)

let suite =
  [
    ( "replay",
      [
        Alcotest.test_case "capture spans at the builtin boundary" `Quick
          test_capture_spans;
        Alcotest.test_case "capture is deterministic" `Quick test_capture_deterministic;
        Alcotest.test_case "recorder tees with existing observer" `Quick
          test_recorder_tees_with_existing_observer;
        Alcotest.test_case "fnv-1a known values" `Quick test_fnv_known_values;
        Alcotest.test_case "r2cr round-trip" `Quick test_roundtrip;
        Alcotest.test_case "r2cr round-trip after reduction" `Quick
          test_roundtrip_reduced;
        Alcotest.test_case "r2cr rejects malformed documents" `Quick
          test_of_string_rejects;
        Alcotest.test_case "feed/loop expansion" `Quick test_feeds_loop_expansion;
        Alcotest.test_case "save/load/files" `Quick test_save_load_files;
        Alcotest.test_case "replay reproduces the profile" `Quick
          test_replay_reproduces;
        Alcotest.test_case "fidelity breaches detected" `Quick
          test_fidelity_breach_detected;
        Alcotest.test_case "replay across configs" `Slow test_replay_under_other_configs;
        Alcotest.test_case "reduction preserves semantics" `Quick
          test_reduce_preserves_semantics;
        Alcotest.test_case "reduction is deterministic" `Quick test_reduce_deterministic;
        Alcotest.test_case "reduction respects the oracle budget" `Quick
          test_reduce_budget_respected;
      ] );
  ]
