(* Differential tests for the tier-3 template JIT: the three-way
   bit-identicality contract (reference dispatch, fast interpreter,
   tier 3) on pinned generated programs, the fuzz corpus, faults inside
   compiled code, and deopt storms (random fuel cuts, mid-run observer
   attachment). Plus the staleness battery: a poisoned or rerandomized
   cache entry must be invalidated or revalidated — never executed. *)

open R2c_machine
module D = R2c_core.Dconfig
module Pipeline = R2c_core.Pipeline
module Gen = R2c_fuzz.Gen
module Corpus = R2c_fuzz.Corpus
module Genprog = R2c_workloads.Genprog
module Opts = R2c_compiler.Opts
module Link = R2c_compiler.Link
module Asm = R2c_compiler.Asm
module Q = QCheck

let fuel = 2_000_000

(* Compile-everything-immediately thresholds: unit-test programs are
   short, so the default warm-up would leave tier 3 cold. *)
let hot = { Jit.call_threshold = 1; backedge_threshold = 2 }

(* Same oracle as Test_perf: everything the contract covers, cycles as
   IEEE-754 bits. *)
let fingerprint cpu result =
  Printf.sprintf "%s|exit:%d|cycles:%Lx|insns:%d|imiss:%d|iacc:%d|depth:%d|out:%s"
    (match result with
    | Cpu.Halted -> "halted"
    | Cpu.Fuel_exhausted -> "fuel"
    | Cpu.Faulted f -> "fault:" ^ Fault.to_string f)
    cpu.Cpu.exit_code
    (Int64.bits_of_float cpu.Cpu.cycles)
    cpu.Cpu.insns
    (Icache.misses cpu.Cpu.icache)
    (Icache.accesses cpu.Cpu.icache)
    cpu.Cpu.max_depth (Cpu.output cpu)

(* JIT off at load; each leg decides its own tier. *)
let load img = Loader.load ~strict_align:true ~jit:false ~profile:Cost.epyc_rome img

let fp_reference img =
  let cpu = load img in
  fingerprint cpu (Cpu.run_reference cpu ~fuel)

let fp_fast img =
  let cpu = load img in
  fingerprint cpu (Cpu.run cpu ~fuel)

(* Returns the fingerprint and the attachment's stats so callers can
   assert tier 3 actually ran. *)
let fp_tier3 img =
  let cpu = load img in
  let j = Jit.attach ~config:hot cpu in
  let fp = fingerprint cpu (Cpu.run cpu ~fuel) in
  (fp, Jit.stats j)

let check_three_tiers name img =
  let reference = fp_reference img in
  Alcotest.(check string) (name ^ " [fast]") reference (fp_fast img);
  let t3, st = fp_tier3 img in
  Alcotest.(check string) (name ^ " [tier3]") reference t3;
  st

(* --- the 25 pinned-seed programs, three tiers ----------------------- *)

let test_generated_programs () =
  let tier3_total = ref 0 and compiled_total = ref 0 in
  for i = 1 to 25 do
    let seed = 7001 + (137 * i) in
    let p = Gen.v2 ~seed () in
    let st =
      check_three_tiers
        (Printf.sprintf "gen seed %d full" seed)
        (Pipeline.compile ~seed (D.full ()) p)
    in
    tier3_total := !tier3_total + st.Jit.tier3_insns;
    compiled_total := !compiled_total + st.Jit.compiled;
    if i mod 5 = 0 then
      ignore
        (check_three_tiers
           (Printf.sprintf "gen seed %d baseline" seed)
           (Pipeline.compile ~seed D.baseline p))
  done;
  (* the equality above must not be vacuous *)
  Alcotest.(check bool) "tier 3 compiled functions" true (!compiled_total > 0);
  Alcotest.(check bool) "tier 3 retired instructions" true (!tier3_total > 0)

(* --- fuzz corpus through all three tiers ---------------------------- *)

let test_corpus_replay () =
  List.iter
    (fun path ->
      match Corpus.load path with
      | Error e -> Alcotest.failf "%s: %s" path e
      | Ok p ->
          ignore
            (check_three_tiers (path ^ " full") (Pipeline.compile ~seed:11 (D.full ()) p));
          ignore
            (check_three_tiers (path ^ " baseline")
               (Pipeline.compile ~seed:11 D.baseline p)))
    (Corpus.files ~dir:"corpus")

(* --- OSR: compiled code entered at a loop head, not just at entry --- *)

let test_osr_entry () =
  let seed = 7001 + 137 in
  let img = Pipeline.compile ~seed (D.full ()) (Gen.v2 ~seed ()) in
  let cpu = load img in
  let j = Jit.attach ~config:hot cpu in
  ignore (Cpu.run cpu ~fuel);
  let st = Jit.stats j in
  Alcotest.(check bool) "compiled" true (st.Jit.compiled > 0);
  Alcotest.(check bool) "entered at function entry" true (st.Jit.entry_enters > 0);
  Alcotest.(check bool) "entered via OSR" true (st.Jit.osr_enters > 0);
  Alcotest.(check bool)
    "tier 3 retired the bulk" true
    (st.Jit.tier3_insns > st.Jit.interp_insns)

(* --- faults detonating inside compiled code ------------------------- *)

(* With call_threshold = 1 the function compiles on first entry, so the
   faulting instruction runs as a tier-3 template, not interpreted. *)
let raw_image insns =
  let emitted = [ Asm.of_raw { Opts.rname = "main"; rinsns = insns; rbooby_trap = false } ] in
  Link.link ~opts:Opts.default ~main:"main" emitted []

let test_fault_equality () =
  ignore
    (check_three_tiers "div by zero in hot code"
       (raw_image
          Insn.
            [ Mov (Reg RAX, Imm (Abs 1)); Mov (Reg RBX, Imm (Abs 0)); Div (RAX, Reg RBX); Ret ]));
  ignore
    (check_three_tiers "wild store in hot code"
       (raw_image
          Insn.
            [ Mov (Reg RAX, Imm (Abs 0x666000)); Mov (Mem (mem ~base:RAX ()), Imm (Abs 1)); Ret ]));
  ignore (check_three_tiers "trap in hot code" (raw_image Insn.[ Trap ]))

(* --- builtin taps fire identically under tier 3 --------------------- *)

let test_builtin_tap () =
  let seed = 7001 + (137 * 2) in
  let img = Pipeline.compile ~seed (D.full ()) (Gen.v2 ~seed ()) in
  let tap cpu =
    let n = ref 0 in
    Cpu.set_builtin_tap cpu (Some (fun _ _ -> incr n));
    n
  in
  let cpu_r = load img in
  let n_r = tap cpu_r in
  let fp_r = fingerprint cpu_r (Cpu.run_reference cpu_r ~fuel) in
  let cpu_j = load img in
  let n_j = tap cpu_j in
  let j = Jit.attach ~config:hot cpu_j in
  let fp_j = fingerprint cpu_j (Cpu.run cpu_j ~fuel) in
  Alcotest.(check string) "fingerprints agree" fp_r fp_j;
  Alcotest.(check int) "tap fire counts agree" !n_r !n_j;
  Alcotest.(check bool) "taps fired" true (!n_r > 0);
  Alcotest.(check bool) "tier 3 ran under the tap" true ((Jit.stats j).Jit.tier3_insns > 0)

(* --- deopt storm: random fuel cuts + mid-run observer attach -------- *)

(* A run segmented at arbitrary fuel boundaries, with an observer
   attached on every other segment (forcing the reference tier for that
   stretch, i.e. a dispatch-level deopt and later re-entry), must land on
   exactly the state of one uninterrupted reference run. *)
let run_segmented cpu cuts total =
  let observer ~rip:_ ~cycles:_ ~misses:_ ~called:_ = () in
  let remaining = ref total in
  let result = ref Cpu.Fuel_exhausted in
  let stopped = ref false in
  List.iteri
    (fun k f ->
      if (not !stopped) && !remaining > 0 then begin
        let f = min f !remaining in
        if k land 1 = 1 then Cpu.set_observer cpu (Some observer);
        let r = Cpu.run cpu ~fuel:f in
        Cpu.set_observer cpu None;
        remaining := !remaining - f;
        match r with
        | Cpu.Fuel_exhausted -> ()
        | r ->
            result := r;
            stopped := true
      end)
    cuts;
  if (not !stopped) && !remaining > 0 then result := Cpu.run cpu ~fuel:!remaining;
  !result

let prop_deopt_storm =
  Q.Test.make ~count:20
    ~name:"jit: segmented tier-3 run with mid-run observer == one reference run"
    Q.(pair (int_range 1 25) (small_list (int_range 1 20_000)))
    (fun (i, cuts) ->
      let seed = 7001 + (137 * i) in
      let img = Pipeline.compile ~seed (D.full ()) (Gen.v2 ~seed ()) in
      let total = fuel in
      let reference =
        let cpu = load img in
        fingerprint cpu (Cpu.run_reference cpu ~fuel:total)
      in
      let cpu = load img in
      ignore (Jit.attach ~config:hot cpu);
      let r = run_segmented cpu cuts total in
      String.equal reference (fingerprint cpu r))

(* --- staleness: poisoned entries are invalidated, never executed ---- *)

let test_poisoned_cache () =
  let seed = 7001 + (137 * 3) in
  let img = Pipeline.compile ~seed (D.full ()) (Gen.v2 ~seed ()) in
  let reference = fp_reference img in
  let cache = Jit.create_cache ~config:hot ~profile:Cost.epyc_rome img in
  let cpu1 = load img in
  let j1 = Jit.attach ~config:hot ~cache cpu1 in
  Alcotest.(check string) "warm run" reference (fingerprint cpu1 (Cpu.run cpu1 ~fuel));
  (* strand every cached entry the way an interrupted rerandomization
     would: stale generation, wrong digest *)
  let poisoned =
    List.fold_left
      (fun acc (f : Image.func_info) ->
        if Jit.poison j1 ~entry:f.Image.entry then acc + 1 else acc)
      0 img.Image.funcs
  in
  Alcotest.(check bool) "something was cached to poison" true (poisoned > 0);
  let compiled_before = (Jit.cache_stats cache).Jit.compiled in
  let cpu2 = load img in
  ignore (Jit.attach ~config:hot ~cache cpu2);
  Alcotest.(check string) "post-poison run" reference
    (fingerprint cpu2 (Cpu.run cpu2 ~fuel));
  let st = Jit.cache_stats cache in
  Alcotest.(check bool) "stale entries invalidated" true (st.Jit.invalidated >= 1);
  Alcotest.(check bool) "and recompiled fresh" true (st.Jit.compiled > compiled_before)

(* --- cache survival across incremental rerandomization (PR 9) ------- *)

let test_rerand_cache_reuse () =
  let p = Genprog.generate ~seed:5 ~funcs:24 in
  let cfg = D.full () in
  let coords ls = { Pipeline.cfg; body_seed = 3; link_seed = Some ls } in
  let r = Pipeline.rerand_create () in
  let img1, _ = Pipeline.compile_incremental r (coords 100) p in
  let img1b, _ = Pipeline.compile_incremental r (coords 100) p in
  let img2, _ = Pipeline.compile_incremental r (coords 101) p in
  let cache = Jit.create_cache ~config:hot ~profile:Cost.epyc_rome img1 in
  let run_jit img =
    let cpu = load img in
    let j = Jit.attach ~config:hot ~cache cpu in
    (fingerprint cpu (Cpu.run cpu ~fuel), j)
  in
  let fp1, j1 = run_jit img1 in
  Alcotest.(check string) "variant ls=100" (fp_reference img1) fp1;
  (* poison one entry, then retarget the warm cache at a byte-identical
     image (same coords, fresh Image.t): the poisoned entry must be
     invalidated and recompiled, the healthy ones revalidated *)
  let first_entry = (List.hd img1.Image.funcs).Image.entry in
  let could_poison = Jit.poison j1 ~entry:first_entry in
  let fp1b, _ = run_jit img1b in
  Alcotest.(check string) "same coords, warm cache" (fp_reference img1b) fp1b;
  let st = Jit.cache_stats cache in
  Alcotest.(check bool) "healthy entries revalidated" true (st.Jit.revalidated >= 1);
  if could_poison then
    Alcotest.(check bool) "poisoned entry invalidated" true (st.Jit.invalidated >= 1);
  (* rotate the link seed: new layout, same bodies — the cache follows
     and results stay identical to the reference tier on the new image *)
  let fp2, _ = run_jit img2 in
  Alcotest.(check string) "rotated variant ls=101" (fp_reference img2) fp2

let suite =
  [
    ( "jit",
      [
        Alcotest.test_case "25 pinned-seed programs, three tiers" `Quick
          test_generated_programs;
        Alcotest.test_case "corpus replay, three tiers" `Quick test_corpus_replay;
        Alcotest.test_case "OSR entry at loop heads" `Quick test_osr_entry;
        Alcotest.test_case "fault equality in hot code" `Quick test_fault_equality;
        Alcotest.test_case "builtin taps under tier 3" `Quick test_builtin_tap;
        QCheck_alcotest.to_alcotest prop_deopt_storm;
        Alcotest.test_case "poisoned cache invalidated, not executed" `Quick
          test_poisoned_cache;
        Alcotest.test_case "cache reuse across incremental rerandomization" `Quick
          test_rerand_cache_reuse;
      ] );
  ]
