(* Static auditor tests: CFG recovery, the invariant linter, the
   sanitizer-wiring self-check and the gadget scanner, plus the IR
   validator's reachability diagnostics. *)

open R2c_machine
module Lint = R2c_analysis.Lint
module Cfg = R2c_analysis.Cfg
module Gadget = R2c_analysis.Gadget
module Selfcheck = R2c_analysis.Selfcheck
module Defenses = R2c_defenses.Defenses
module Dconfig = R2c_core.Dconfig

let baseline_img = lazy (R2c_workloads.Vulnapp.build ~seed:4 Dconfig.baseline)
let full_img = lazy (Defenses.build_vulnapp Defenses.r2c ~seed:4)
let checked_img = lazy (Defenses.build_vulnapp Defenses.r2c_checked ~seed:4)

let full_expect = Lint.expect_of_dconfig (Dconfig.full ())
let checked_expect = Lint.expect_of_dconfig Dconfig.full_checked

(* --- CFG recovery ------------------------------------------------------ *)

let test_cfg_well_formed () =
  let img = Lazy.force baseline_img in
  let cfg = Cfg.recover img in
  Alcotest.(check bool) "found functions" true (List.length cfg.Cfg.funcs > 1);
  List.iter
    (fun (fc : Cfg.func) ->
      (match fc.fc_blocks with
      | first :: _ ->
          Alcotest.(check int) "first block at entry" fc.fc_entry first.Cfg.b_entry
      | [] -> Alcotest.fail (fc.fc_name ^ ": no blocks"));
      List.iter
        (fun (b : Cfg.block) ->
          List.iter
            (fun s ->
              Alcotest.(check bool) "successor inside function" true
                (s >= fc.fc_entry && s < fc.fc_entry + fc.fc_len))
            b.b_succs)
        fc.fc_blocks)
    cfg.Cfg.funcs;
  match Hashtbl.find_opt cfg.Cfg.call_graph "_start" with
  | Some callees -> Alcotest.(check bool) "_start calls main" true (List.mem "main" callees)
  | None -> Alcotest.fail "_start missing from call graph"

let test_cfg_diversified_grows () =
  let base = Cfg.stats (Cfg.recover (Lazy.force baseline_img)) in
  let full = Cfg.stats (Cfg.recover (Lazy.force full_img)) in
  (* Booby-trap functions and prolog traps add functions and blocks. *)
  Alcotest.(check bool) "more functions" true (full.Cfg.n_funcs > base.Cfg.n_funcs);
  Alcotest.(check bool) "more blocks" true (full.Cfg.n_blocks > base.Cfg.n_blocks)

(* --- Linter ------------------------------------------------------------ *)

let check_clean what expect img =
  match Lint.run ~expect img with
  | [] -> ()
  | fs ->
      Alcotest.fail
        (Printf.sprintf "%s: %d findings, first: %s" what (List.length fs)
           (Lint.finding_to_string (List.hd fs)))

let test_lint_clean_baseline () =
  check_clean "baseline" (Lint.expect_of_dconfig Dconfig.baseline) (Lazy.force baseline_img)

let test_lint_clean_full () = check_clean "full r2c" full_expect (Lazy.force full_img)

let test_lint_clean_checked () =
  check_clean "r2c-checked" checked_expect (Lazy.force checked_img)

let test_lint_flags_rwx_text () =
  let img = { (Lazy.force baseline_img) with Image.text_perm = Perm.rwx } in
  let fs = Lint.run ~expect:Lint.relaxed img in
  Alcotest.(check bool) "rwx flagged" true
    (List.exists (fun (f : Lint.finding) -> f.rule = "wx") fs)

let rules_of fs = List.sort_uniq compare (List.map (fun (f : Lint.finding) -> f.rule) fs)

let test_mutation_flagged m () =
  let img = Selfcheck.apply m (Lazy.force checked_img) in
  let fs = Lint.run ~expect:checked_expect img in
  Alcotest.(check bool) "findings present" true (fs <> []);
  Alcotest.(check (list string)) "exactly the expected rule"
    [ Selfcheck.expected_rule m ] (rules_of fs)

let test_selfcheck_all_ok () =
  let outcomes = Selfcheck.run ~expect:checked_expect (Lazy.force checked_img) in
  Alcotest.(check int) "three mutations" 3 (List.length outcomes);
  List.iter
    (fun (o : Selfcheck.outcome) ->
      Alcotest.(check bool) (Selfcheck.mutation_to_string o.mutation) true o.ok)
    outcomes

(* --- Compiler metadata the rules depend on ----------------------------- *)

let test_checked_sites_metadata () =
  let checked = Lazy.force checked_img in
  Alcotest.(check bool) "checked image records checked sites" true
    (Hashtbl.length checked.Image.checked_sites > 0);
  Hashtbl.iter
    (fun ra () ->
      Alcotest.(check bool) "checked site is an unwind site" true
        (Hashtbl.mem checked.Image.unwind_sites ra))
    checked.Image.checked_sites;
  let full = Lazy.force full_img in
  Alcotest.(check int) "unchecked config records none" 0
    (Hashtbl.length full.Image.checked_sites)

let test_code_ptr_slots_metadata () =
  let img = Lazy.force baseline_img in
  (* vulnapp's service table is a sanctioned function-pointer population. *)
  Alcotest.(check bool) "sanctioned slots recorded" true
    (Hashtbl.length (Lazy.force img.Image.code_ptr_slots) > 0)

(* --- Gadget scanner ---------------------------------------------------- *)

let test_gadget_scan_deterministic () =
  let img = Lazy.force baseline_img in
  let a = Gadget.scan img and b = Gadget.scan img in
  Alcotest.(check bool) "found gadgets" true (a <> []);
  Alcotest.(check int) "deterministic" (List.length a) (List.length b);
  Alcotest.(check int) "self-intersection is total" (List.length a)
    (List.length (Gadget.survivors [ a; b ]))

let test_gadget_survivors_shrink () =
  let scans =
    List.map
      (fun seed -> Gadget.scan (Defenses.build_vulnapp Defenses.r2c ~seed))
      [ 2; 3; 5; 7 ]
  in
  let min_count = List.fold_left (fun acc g -> min acc (List.length g)) max_int scans in
  Alcotest.(check bool) "each variant has gadgets" true (min_count > 0);
  Alcotest.(check bool) "survivors strictly below any single variant" true
    (List.length (Gadget.survivors scans) < min_count)

(* --- IR validator reachability diagnostics ----------------------------- *)

let prog_of_blocks blocks =
  {
    Ir.funcs = [ { Ir.name = "main"; nparams = 0; nvars = 0; slots = [||]; blocks } ];
    globals = [];
    main = "main";
  }

let test_validate_unreachable_block () =
  let blocks =
    [
      { Ir.lbl = 0; body = []; term = Ir.Ret (Some (Ir.Const 0)) };
      { Ir.lbl = 1; body = []; term = Ir.Br 0 };
    ]
  in
  let errs = List.map Validate.error_to_string (Validate.check (prog_of_blocks blocks)) in
  Alcotest.(check bool) "unreachable reported" true
    (List.exists (fun e -> e = "main: unreachable block 1") errs)

let test_validate_reachable_loop () =
  (* A cycle reachable from the entry is fine. *)
  let blocks =
    [
      { Ir.lbl = 0; body = []; term = Ir.Br 1 };
      { Ir.lbl = 1; body = []; term = Ir.Cond_br (Ir.Const 1, 0, 2) };
      { Ir.lbl = 2; body = []; term = Ir.Ret (Some (Ir.Const 0)) };
    ]
  in
  Alcotest.(check int) "no diagnostics" 0 (List.length (Validate.check (prog_of_blocks blocks)))

let test_validate_duplicate_label () =
  let blocks =
    [
      { Ir.lbl = 0; body = []; term = Ir.Ret (Some (Ir.Const 0)) };
      { Ir.lbl = 0; body = []; term = Ir.Ret (Some (Ir.Const 0)) };
    ]
  in
  let errs = List.map Validate.error_to_string (Validate.check (prog_of_blocks blocks)) in
  Alcotest.(check bool) "duplicate reported" true
    (List.exists (fun e -> e = "main: duplicate label 0") errs);
  (* Reachability is skipped under duplicated labels, not spammed. *)
  Alcotest.(check bool) "no unreachable spam" false
    (List.exists (fun e -> e = "main: unreachable block 0") errs)

let suite =
  [
    ( "audit-cfg",
      [
        Alcotest.test_case "recovered CFG well-formed" `Quick test_cfg_well_formed;
        Alcotest.test_case "diversification grows the CFG" `Quick test_cfg_diversified_grows;
      ] );
    ( "audit-lint",
      [
        Alcotest.test_case "baseline lints clean" `Quick test_lint_clean_baseline;
        Alcotest.test_case "full r2c lints clean" `Quick test_lint_clean_full;
        Alcotest.test_case "r2c-checked lints clean" `Quick test_lint_clean_checked;
        Alcotest.test_case "rwx text flagged" `Quick test_lint_flags_rwx_text;
        Alcotest.test_case "dropped post-check -> btra" `Quick
          (test_mutation_flagged Selfcheck.Drop_btra_postcheck);
        Alcotest.test_case "skipped mprotect -> wx" `Quick
          (test_mutation_flagged Selfcheck.Skip_mprotect);
        Alcotest.test_case "planted pointer -> ptr" `Quick
          (test_mutation_flagged Selfcheck.Plant_code_pointer);
        Alcotest.test_case "selfcheck wiring" `Quick test_selfcheck_all_ok;
        Alcotest.test_case "checked-site metadata" `Quick test_checked_sites_metadata;
        Alcotest.test_case "sanctioned-slot metadata" `Quick test_code_ptr_slots_metadata;
      ] );
    ( "audit-gadget",
      [
        Alcotest.test_case "scan deterministic" `Quick test_gadget_scan_deterministic;
        Alcotest.test_case "survivors shrink" `Quick test_gadget_survivors_shrink;
      ] );
    ( "audit-validate",
      [
        Alcotest.test_case "unreachable block" `Quick test_validate_unreachable_block;
        Alcotest.test_case "reachable loop" `Quick test_validate_reachable_loop;
        Alcotest.test_case "duplicate label" `Quick test_validate_duplicate_label;
      ] );
  ]
