(* Observability layer: JSON printer/parser, metrics histograms, the trace
   ring under the observer hook, profiler attribution, zero-cost-when-off,
   and the pool timeline's span invariant. *)

open R2c_machine
module Obs = R2c_obs
module Json = R2c_obs.Json
module Metrics = R2c_obs.Metrics
module Events = R2c_obs.Events
module Profile = R2c_obs.Profile
module Measure = R2c_harness.Measure
module Prof = R2c_harness.Prof

(* --- JSON --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.Str "line\nbreak \"quoted\" \x01");
        ("c", Json.Arr [ Json.Bool true; Json.Null; Json.Float 1.5 ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check string) "roundtrip" (Json.to_string v) (Json.to_string v')
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)

let test_json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":1} trailing"; "nul"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ s)
      | Error _ -> ())
    bad

(* --- metrics --- *)

let test_bucket_boundaries () =
  (* bucket 0 holds v <= 1; bucket i >= 1 holds (2^(i-1), 2^i]. *)
  List.iter
    (fun (v, b) ->
      Alcotest.(check int) (Printf.sprintf "bucket_of %d" v) b (Metrics.bucket_of v))
    [ (0, 0); (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (1024, 10); (1025, 11) ];
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "bound %d" i)
        (1 lsl i)
        (Metrics.bucket_bound i);
      (* boundary values land in their own bucket, one past spills over *)
      Alcotest.(check int) "on boundary" i (Metrics.bucket_of (1 lsl i));
      Alcotest.(check int) "past boundary" (i + 1) (Metrics.bucket_of ((1 lsl i) + 1)))
    [ 1; 2; 5; 10; 20 ]

let test_percentile () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  Alcotest.(check int) "empty" 0 (Metrics.percentile h 50.0);
  List.iter (Metrics.observe h) [ 1; 2; 4; 8 ];
  (* nearest-rank over buckets: ranks 1..4 sit in buckets 0,1,2,3 *)
  Alcotest.(check int) "p25" 1 (Metrics.percentile h 25.0);
  Alcotest.(check int) "p50" 2 (Metrics.percentile h 50.0);
  Alcotest.(check int) "p75" 4 (Metrics.percentile h 75.0);
  Alcotest.(check int) "p100" 8 (Metrics.percentile h 100.0);
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  Alcotest.(check (float 0.001)) "sum" 15.0 (Metrics.hist_sum h)

let test_registry_exposition () =
  let m = Metrics.create () in
  let c = Metrics.counter ~help:"requests" m "reqs_total" in
  Metrics.inc ~by:3 c;
  let g = Metrics.gauge m "depth" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram m "sizes" in
  Metrics.observe h 3;
  let text = Metrics.expose m in
  let contains needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true (contains needle))
    [ "# TYPE reqs_total counter"; "reqs_total 3"; "depth 2.5"; "sizes_count 1" ];
  (* idempotent re-registration, kind mismatch rejected *)
  Metrics.inc (Metrics.counter m "reqs_total");
  Alcotest.(check int) "re-registered" 4 (Metrics.counter_value c);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.gauge: reqs_total registered as another kind")
    (fun () -> ignore (Metrics.gauge m "reqs_total"));
  match Json.parse (Json.to_string (Metrics.to_json m)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("metrics json: " ^ e)

(* --- trace ring via the observer hook --- *)

let traced_records ~capacity img =
  let p = Process.start img in
  let ring = Trace.create ~capacity in
  Trace.attach ring p.Process.cpu;
  match Process.run p with
  | Process.Exited 0 -> (Trace.records ring, Process.insns p)
  | o -> Alcotest.fail ("run failed: " ^ Process.outcome_to_string o)

let test_ring_wraparound_exact_capacity () =
  let img = R2c_compiler.Driver.compile (Samples.loop_prog 4) in
  let all, insns = traced_records ~capacity:1_000_000 img in
  Alcotest.(check int) "hook saw every insn" insns (List.length all);
  (* capacity == records written: nothing dropped, order intact *)
  let exact, _ = traced_records ~capacity:insns img in
  Alcotest.(check int) "exact capacity keeps all" insns (List.length exact);
  Alcotest.(check bool) "same records" true (exact = all);
  (* one below capacity: exactly the oldest record falls off *)
  let short, _ = traced_records ~capacity:(insns - 1) img in
  Alcotest.(check int) "one dropped" (insns - 1) (List.length short);
  Alcotest.(check bool) "tail preserved" true (short = List.tl all)

(* --- profiler attribution --- *)

let test_profiler_two_functions () =
  let profile = Cost.epyc_rome in
  let img = R2c_compiler.Driver.compile (Samples.fib_prog 10) in
  let pr = Profile.create ~profile img in
  let p = Process.start ~profile img in
  Profile.attach pr p.Process.cpu;
  (match Process.run p with
  | Process.Exited 0 -> ()
  | o -> Alcotest.fail (Process.outcome_to_string o));
  let rows = Profile.rows pr in
  let row name =
    match List.find_opt (fun (r : Profile.row) -> r.Profile.name = name) rows with
    | Some r -> r
    | None -> Alcotest.fail ("no profile row for " ^ name)
  in
  let fib = row "fib" and main = row "main" in
  Alcotest.(check bool) "fib hot" true (fib.Profile.cycles > main.Profile.cycles);
  (* exact call attribution: main calls fib once; every other fib entry is
     the recursion. fib(10) makes 177 calls in total. *)
  let edge a b =
    match
      List.find_opt (fun (x, y, _) -> x = a && y = b) (Profile.edges pr)
    with
    | Some (_, _, n) -> n
    | None -> 0
  in
  Alcotest.(check int) "main->fib edge" 1 (edge "main" "fib");
  Alcotest.(check int) "fib calls" 177 fib.Profile.calls;
  Alcotest.(check int) "fib->fib edge" 176 (edge "fib" "fib");
  (* column sums reproduce the CPU's own counters *)
  let t = Profile.total pr in
  Alcotest.(check int) "insns sum" (Process.insns p) t.Profile.insns;
  Alcotest.(check int) "miss sum" (Process.icache_misses p) t.Profile.misses;
  let cpu_cycles = Process.cycles p in
  Alcotest.(check bool)
    (Printf.sprintf "cycles sum (%.1f vs %.1f)" t.Profile.cycles cpu_cycles)
    true
    (abs_float (t.Profile.cycles -. cpu_cycles) /. cpu_cycles < 0.001);
  (* the split is additive per row *)
  List.iter
    (fun (r : Profile.row) ->
      Alcotest.(check bool)
        (r.Profile.name ^ " split additive")
        true
        (r.Profile.callsite_cycles +. r.Profile.prologue_cycles
         +. r.Profile.icache_cycles
        <= r.Profile.cycles +. 1e-6))
    rows

let test_profiler_diversified_sums () =
  let r = Prof.run ~seed:5 ~workload:"mcf" () in
  Alcotest.(check bool) "sums within 1% on both sides" true (Prof.sums_ok r);
  (* diversification must show up in the split: BTRA setup at call sites
     and trap-padded prologues cost cycles the baseline doesn't pay *)
  let tot = Profile.total r.Prof.r2c.Prof.prof in
  Alcotest.(check bool) "callsite overhead attributed" true (tot.Profile.callsite_cycles > 0.0);
  Alcotest.(check bool) "prologue overhead attributed" true (tot.Profile.prologue_cycles > 0.0)

(* --- zero-cost when off: bit-identical cycles --- *)

let test_unobserved_bit_identical () =
  let img = R2c_compiler.Driver.compile (Samples.loop_prog 6) in
  let bare = Measure.run img in
  let sink = Obs.Sink.create () in
  let observed = Measure.run ~obs:sink ~label:"loop" img in
  Alcotest.(check bool) "cycles bit-identical" true
    (bare.Measure.total_cycles = observed.Measure.total_cycles);
  Alcotest.(check int) "insns equal" bare.Measure.insns observed.Measure.insns;
  Alcotest.(check int) "misses equal" bare.Measure.icache_misses
    observed.Measure.icache_misses;
  Alcotest.(check bool) "profile stored" true (Obs.Sink.profile sink "loop" <> None)

(* --- measure stats extension --- *)

let test_measure_depth_and_icache () =
  let s = Measure.run (R2c_compiler.Driver.compile (Samples.fib_prog 8)) in
  (* recursion depth: fib(8) nests 8 deep below main *)
  Alcotest.(check bool) "peak depth sees recursion" true (s.Measure.peak_depth >= 8);
  Alcotest.(check bool) "icache accessed" true (s.Measure.icache_accesses > 0);
  Alcotest.(check bool) "misses bounded by accesses" true
    (s.Measure.icache_misses <= s.Measure.icache_accesses)

(* --- pool timeline --- *)

let test_pool_span_invariant () =
  let sink, stats = Prof.pool_timeline ~requests:40 ~seed:7 () in
  let events = sink.Obs.Sink.events in
  let spans = Events.count ~cat:"request" events in
  Alcotest.(check int) "one span per submit"
    (stats.R2c_runtime.Pool.served + stats.R2c_runtime.Pool.dropped)
    spans;
  Alcotest.(check int) "crash instants" stats.R2c_runtime.Pool.crashes
    (Events.count ~cat:"crash" events);
  (* the mixed stream must actually exercise the crash path *)
  Alcotest.(check bool) "stream crashes" true (stats.R2c_runtime.Pool.crashes > 0);
  (* every post-mortem instant carries a non-empty tail of the dying
     child's last instructions *)
  let pms =
    List.filter (fun (e : Events.event) -> e.Events.cat = "postmortem") (Events.events events)
  in
  Alcotest.(check bool) "post-mortems captured" true (pms <> []);
  List.iter
    (fun (e : Events.event) ->
      match List.assoc_opt "tail" e.Events.args with
      | Some tail -> Alcotest.(check bool) "tail non-empty" true (String.length tail > 0)
      | None -> Alcotest.fail "post-mortem without tail")
    pms;
  (* Chrome export is valid JSON *)
  (match Json.parse (Events.to_chrome events) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("chrome trace: " ^ e));
  (* JSONL: every line parses *)
  String.split_on_char '\n' (Events.to_jsonl events)
  |> List.iter (fun line ->
         if line <> "" then
           match Json.parse line with
           | Ok _ -> ()
           | Error e -> Alcotest.fail ("jsonl line: " ^ e))

let test_events_bounded () =
  let t = Events.create ~limit:5 () in
  for i = 1 to 9 do
    Events.instant t ~name:"e" ~ts:i
  done;
  Alcotest.(check int) "kept" 5 (Events.count t);
  Alcotest.(check int) "dropped counted" 4 (Events.dropped t)

(* --- parser hardening: truncation, bad escapes, nesting bombs --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_json_error_offsets () =
  (* Every rejection carries a byte offset — truncated containers and
     strings, malformed escapes, raw control bytes, comma slip-ups. *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.fail ("accepted: " ^ String.escaped s)
      | Error e ->
          Alcotest.(check bool)
            ("offset in message for " ^ String.escaped s)
            true
            (String.length e >= 12 && String.sub e 0 12 = "json: offset"))
    [
      "{\"a\":";
      "[1,2";
      "\"abc";
      "{\"a\"}";
      "{\"a\":1,}";
      "[1 2]";
      "\"\\x\"";
      "\"\\u12\"";
      "\"\\u12zz\"";
      "\"a\tb\"";
      "\"half\\";
      "12.";
      "1e+";
    ]

let nest k = String.make k '[' ^ "1" ^ String.make k ']'

let test_json_depth_limit () =
  (* At the default bound: 512 levels parse, 513 report instead of
     overflowing the interpreter stack. *)
  (match Json.parse (nest 512) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("512 levels should parse: " ^ e));
  (match Json.parse (nest 513) with
  | Ok _ -> Alcotest.fail "accepted 513-deep nesting"
  | Error e ->
      Alcotest.(check bool) "names the bound" true (contains e "nesting too deep"));
  (* Objects count too, and the bound is tunable. *)
  (match Json.parse ~max_depth:2 "{\"a\":{\"b\":{\"c\":1}}}" with
  | Ok _ -> Alcotest.fail "max_depth 2 accepted 3-deep object"
  | Error _ -> ());
  match Json.parse ~max_depth:3 "{\"a\":{\"b\":{\"c\":1}}}" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("3-deep at max_depth 3 should parse: " ^ e)

(* --- Chrome trace export → re-parse round trip (property) --- *)

let prop_chrome_roundtrip =
  QCheck.Test.make ~name:"chrome trace export reparses with exact event count"
    ~count:50
    QCheck.(small_list (pair small_nat small_nat))
    (fun evs ->
      let t = Events.create ~limit:64 () in
      List.iteri
        (fun i (ts, dur) ->
          if i mod 2 = 0 then
            Events.complete t ~name:(Printf.sprintf "span\"%d\n" i) ~ts ~dur
          else
            Events.instant t ~name:"mark" ~ts
              ~args:[ ("k", "v\"\\escaped"); ("n", string_of_int dur) ])
        evs;
      (match Json.parse (Events.to_chrome t) with
      | Error _ -> false
      | Ok doc -> (
          match Json.member "traceEvents" doc with
          | Some (Json.Arr items) -> List.length items = Events.count t
          | _ -> false))
      && String.split_on_char '\n' (Events.to_jsonl t)
         |> List.for_all (fun l -> l = "" || Result.is_ok (Json.parse l)))

(* --- observer fan-out: Sink.tee and the composing attaches --- *)

let test_tee_fanout_order () =
  let log = ref [] in
  let mk tag ~rip ~cycles:_ ~misses:_ ~called:_ = log := (tag, rip) :: !log in
  let o = Obs.Sink.tee [ mk "a"; mk "b" ] in
  o ~rip:7 ~cycles:1.0 ~misses:0 ~called:false;
  o ~rip:9 ~cycles:1.0 ~misses:1 ~called:true;
  Alcotest.(check (list (pair string int)))
    "every observer, listed order, every step"
    [ ("a", 7); ("b", 7); ("a", 9); ("b", 9) ]
    (List.rev !log);
  (* Degenerate arities stay total. *)
  (Obs.Sink.tee []) ~rip:0 ~cycles:0.0 ~misses:0 ~called:false;
  (Obs.Sink.tee [ mk "solo" ]) ~rip:1 ~cycles:0.0 ~misses:0 ~called:false

let test_tee_observers_coexist_per_step () =
  (* Regression for the clobbering bug: two observers fanned out through
     Sink.tee both fire on every retired instruction. *)
  let img = R2c_compiler.Driver.compile (Samples.fib_prog 8) in
  let cpu = Loader.load ~profile:Cost.epyc_rome img in
  let a = ref 0 and b = ref 0 in
  let count r ~rip:_ ~cycles:_ ~misses:_ ~called:_ = incr r in
  Cpu.set_observer cpu (Some (Obs.Sink.tee [ count a; count b ]));
  (match Cpu.run cpu ~fuel:1_000_000 with
  | Cpu.Halted -> ()
  | _ -> Alcotest.fail "run did not halt");
  Alcotest.(check bool) "steps observed" true (!a > 0);
  Alcotest.(check int) "both hooks fire every step" !a !b;
  Alcotest.(check int) "hook count = retired insns" cpu.Cpu.insns !a

let test_profiler_and_ring_tee () =
  (* Profile.attach then Trace.attach ~tee:true: the ring must not evict
     the profiler (the old set_observer clobbering), and both must see
     the whole run. *)
  let profile = Cost.epyc_rome in
  let img = R2c_compiler.Driver.compile (Samples.fib_prog 8) in
  let p = Process.start ~profile img in
  let pr = Profile.create ~profile img in
  Profile.attach pr p.Process.cpu;
  let ring = Trace.create ~capacity:1_000_000 in
  Trace.attach ~tee:true ring p.Process.cpu;
  (match Process.run p with
  | Process.Exited 0 -> ()
  | o -> Alcotest.fail (Process.outcome_to_string o));
  let prof_cycles =
    List.fold_left
      (fun acc (r : Profile.row) -> acc +. r.Profile.cycles)
      0.0 (Profile.rows pr)
  in
  Alcotest.(check bool) "profiler attributed cycles" true (prof_cycles > 0.0);
  Alcotest.(check int) "ring saw every insn" (Process.insns p)
    (List.length (Trace.records ring))

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
        Alcotest.test_case "histogram bucket boundaries" `Quick test_bucket_boundaries;
        Alcotest.test_case "percentile extraction" `Quick test_percentile;
        Alcotest.test_case "registry exposition" `Quick test_registry_exposition;
        Alcotest.test_case "ring wraparound at exact capacity" `Quick
          test_ring_wraparound_exact_capacity;
        Alcotest.test_case "profiler two-function attribution" `Quick
          test_profiler_two_functions;
        Alcotest.test_case "profiler sums on diversified build" `Slow
          test_profiler_diversified_sums;
        Alcotest.test_case "unobserved run bit-identical" `Quick
          test_unobserved_bit_identical;
        Alcotest.test_case "measure depth and icache stats" `Quick
          test_measure_depth_and_icache;
        Alcotest.test_case "pool span invariant + exports" `Slow test_pool_span_invariant;
        Alcotest.test_case "event timeline bounded" `Quick test_events_bounded;
        Alcotest.test_case "json error offsets" `Quick test_json_error_offsets;
        Alcotest.test_case "json depth limit" `Quick test_json_depth_limit;
        QCheck_alcotest.to_alcotest prop_chrome_roundtrip;
        Alcotest.test_case "sink tee fan-out order" `Quick test_tee_fanout_order;
        Alcotest.test_case "tee observers coexist per step" `Quick
          test_tee_observers_coexist_per_step;
        Alcotest.test_case "profiler + trace ring tee" `Quick test_profiler_and_ring_tee;
      ] );
  ]
