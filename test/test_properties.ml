(* Property-based tests (QCheck, registered as alcotest cases).

   The crown jewel is the compiler-correctness property: for random seeded
   programs and random diversification seeds, the fully diversified binary
   behaves exactly like the reference interpreter. *)

module Q = QCheck
module Rng = R2c_util.Rng
module Stats = R2c_util.Stats
module Pipeline = R2c_core.Pipeline
module Dconfig = R2c_core.Dconfig
module Boobytrap = R2c_core.Boobytrap
module Btra = R2c_core.Btra
module Probability = R2c_core.Probability
module Payload = R2c_attacks.Payload
open R2c_machine

let interp_output p =
  match Interp.run ~fuel:100_000_000 p with
  | Ok r -> (r.Interp.output, r.Interp.exit_code)
  | Error e -> failwith (Interp.error_to_string e)

(* --- the differential property --- *)

let prop_random_programs_differential =
  Q.Test.make ~count:12 ~name:"random program: full R2C == interpreter"
    Q.(pair (int_bound 10_000) (int_bound 1_000))
    (fun (prog_seed, div_seed) ->
      let p = R2c_workloads.Genprog.generate ~seed:prog_seed ~funcs:(8 + (prog_seed mod 20)) in
      let expected = interp_output p in
      let img = Pipeline.compile ~seed:div_seed (Dconfig.full ()) p in
      let proc = Process.start ~strict_align:true img in
      match Process.run proc with
      | Process.Exited code -> (Process.output proc, code) = expected
      | Process.Crashed _ | Process.Timeout -> false)

let prop_random_programs_push_setup =
  Q.Test.make ~count:8 ~name:"random program: push-BTRA R2C == interpreter"
    Q.(int_bound 10_000)
    (fun seed ->
      let p = R2c_workloads.Genprog.generate ~seed ~funcs:10 in
      let expected = interp_output p in
      let img = Pipeline.compile ~seed:(seed + 1) (Dconfig.full ~setup:Dconfig.Push ()) p in
      let proc = Process.start ~strict_align:true img in
      match Process.run proc with
      | Process.Exited code -> (Process.output proc, code) = expected
      | Process.Crashed _ | Process.Timeout -> false)

(* --- determinism and diversity --- *)

let layout_signature img =
  List.sort compare
    (List.map (fun (f : Image.func_info) -> (f.Image.fname, f.Image.entry)) img.Image.funcs)

let prop_seed_determinism =
  Q.Test.make ~count:10 ~name:"equal seeds give identical layouts"
    Q.(int_bound 1_000)
    (fun seed ->
      let p = R2c_workloads.Genprog.generate ~seed:3 ~funcs:12 in
      let a = Pipeline.compile ~seed (Dconfig.full ()) p in
      let b = Pipeline.compile ~seed (Dconfig.full ()) p in
      layout_signature a = layout_signature b)

(* --- RNG --- *)

let prop_rng_bounds =
  Q.Test.make ~count:200 ~name:"Rng.int stays in bounds"
    Q.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_rng_shuffle_permutes =
  Q.Test.make ~count:100 ~name:"Rng.shuffle is a permutation"
    Q.(pair small_int (int_range 0 200))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let arr = Array.init n (fun i -> i) in
      Rng.shuffle r arr;
      let sorted = Array.copy arr in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i))

let prop_rng_sample_distinct =
  Q.Test.make ~count:100 ~name:"sample_without_replacement is distinct"
    Q.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let arr = Array.init 50 (fun i -> i) in
      let s = Rng.sample_without_replacement r ~k:n arr in
      List.length (List.sort_uniq compare s) = n)

(* --- clustering --- *)

let prop_cluster_partition =
  Q.Test.make ~count:100 ~name:"cluster partitions its input"
    Q.(pair (list (int_bound 1_000_000)) (int_range 1 10_000))
    (fun (values, gap) ->
      let clusters = Stats.cluster ~gap values in
      let members = List.concat_map (fun c -> c.Stats.members) clusters in
      members = List.sort compare values)

let prop_cluster_gaps =
  Q.Test.make ~count:100 ~name:"cluster boundaries exceed the gap"
    Q.(pair (list (int_bound 1_000_000)) (int_range 1 10_000))
    (fun (values, gap) ->
      let clusters = Stats.cluster ~gap values in
      let rec ok = function
        | (a : Stats.cluster) :: (b :: _ as tl) -> b.Stats.lo - a.Stats.hi > gap && ok tl
        | _ -> true
      in
      ok clusters)

let prop_cluster_internal_gaps =
  Q.Test.make ~count:100 ~name:"within-cluster neighbours within gap"
    Q.(pair (list (int_bound 1_000_000)) (int_range 1 10_000))
    (fun (values, gap) ->
      let clusters = Stats.cluster ~gap values in
      List.for_all
        (fun (c : Stats.cluster) ->
          let rec ok = function
            | a :: (b :: _ as tl) -> b - a <= gap && ok tl
            | _ -> true
          in
          ok c.Stats.members)
        clusters)

(* --- statistics --- *)

let prop_geomean_bounds =
  Q.Test.make ~count:100 ~name:"geomean between min and max"
    Q.(list_of_size (Gen.int_range 1 20) (float_range 0.1 100.0))
    (fun xs ->
      let g = Stats.geomean xs in
      g >= Stats.minimum xs -. 1e-9 && g <= Stats.maximum xs +. 1e-9)

let prop_median_member_or_mean =
  Q.Test.make ~count:100 ~name:"median within range"
    Q.(list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.0))
    (fun xs ->
      let m = Stats.median xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

(* --- BTRA invariants over random programs/seeds --- *)

let btra_cfg = { Dconfig.total = 10; setup = Dconfig.Push; to_builtins = true; max_post = 4; check_after_return = false }

let prop_btra_invariants =
  Q.Test.make ~count:20 ~name:"BTRA plans: pre even, distinct, post matches callee"
    Q.(pair (int_bound 1_000) (int_bound 1_000))
    (fun (prog_seed, rng_seed) ->
      let p = R2c_workloads.Genprog.generate ~seed:prog_seed ~funcs:10 in
      let rng = Rng.create rng_seed in
      let _, targets = Boobytrap.generate rng ~count:48 in
      let pool = Boobytrap.pool_of_targets targets in
      let t = Btra.build ~rng ~cfg:btra_cfg ~pool p in
      Hashtbl.fold
        (fun (_, _) (plan : R2c_compiler.Opts.callsite_plan) acc ->
          acc
          && List.length plan.pre_syms land 1 = 0
          &&
          let all = plan.pre_syms @ plan.post_syms in
          List.length (List.sort_uniq compare all) = List.length all)
        t.Btra.plans true)

(* --- textual IR round trip --- *)

let prop_text_roundtrip =
  Q.Test.make ~count:25 ~name:"textual IR: print/parse round trip"
    Q.(int_bound 100_000)
    (fun seed ->
      let p = R2c_workloads.Genprog.generate ~seed ~funcs:(5 + (seed mod 25)) in
      let printed = Text.to_string p in
      match Text.parse printed with
      | Error _ -> false
      | Ok q -> Text.to_string q = printed)

(* --- payload encoding --- *)

let prop_le64_roundtrip =
  Q.Test.make ~count:200 ~name:"le64 little-endian roundtrip"
    Q.(int_bound max_int)
    (fun v ->
      let s = Payload.le64 v in
      let back = ref 0 in
      for i = 7 downto 0 do
        back := (!back lsl 8) lor Char.code s.[i]
      done;
      String.length s = 8 && !back = v)

let prop_slice_reconstructs =
  Q.Test.make ~count:100 ~name:"Payload.slice = raw bytes of the leak"
    Q.(pair (array_of_size (Gen.int_range 1 16) (int_bound 1_000_000_000)) small_int)
    (fun (values, k) ->
      let upto = 8 * Array.length values in
      let from = k mod upto in
      let s = Payload.slice ~values ~from_off:from ~upto_off:upto in
      String.length s = upto - from
      && String.to_seq s
         |> Seq.mapi (fun i c -> (i + from, c))
         |> Seq.for_all (fun (off, c) ->
                Char.code c = (values.(off / 8) lsr (8 * (off mod 8))) land 0xff))

(* --- heap allocator --- *)

let prop_heap_no_overlap =
  Q.Test.make ~count:50 ~name:"heap: live blocks never overlap"
    Q.(list_of_size (Gen.int_range 1 40) (int_range 1 500))
    (fun sizes ->
      let mem = Mem.create () in
      let h = Heap.create mem ~base:Addr.heap_base in
      let live = ref [] in
      List.iteri
        (fun i size ->
          let a = Heap.malloc h size in
          live := (a, Addr.align_up size ~align:16) :: !live;
          (* free every third block to churn the free list *)
          if i mod 3 = 2 then
            match !live with
            | (b, _) :: rest ->
                Heap.free h b;
                live := rest
            | [] -> ())
        sizes;
      let rec no_overlap = function
        | [] -> true
        | (a, sa) :: rest ->
            List.for_all (fun (b, sb) -> a + sa <= b || b + sb <= a) rest
            && no_overlap rest
      in
      no_overlap !live)

(* --- probability --- *)

let prop_guess_decreasing =
  Q.Test.make ~count:100 ~name:"chain guess probability decreases with n"
    Q.(pair (int_range 1 20) (int_range 1 10))
    (fun (r, n) ->
      Probability.guess_n_return_addresses ~btras:r ~n:(n + 1)
      <= Probability.guess_n_return_addresses ~btras:r ~n)

let prop_pick_bounds =
  Q.Test.make ~count:100 ~name:"heap pick probability in [0,1]"
    Q.(pair (int_range 0 100) (int_range 0 100))
    (fun (h, b) ->
      Q.assume (h + b > 0);
      let p = Probability.pick_benign_heap_pointer ~benign:h ~btdps:b in
      p >= 0.0 && p <= 1.0)

(* --- supervisor backoff --- *)

let prop_backoff_monotone_capped =
  Q.Test.make ~count:200 ~name:"backoff delays monotone non-decreasing, never above cap"
    Q.(pair small_nat (int_range 1 6))
    (fun (seed, factor) ->
      let cfg = { R2c_runtime.Policy.default_backoff with factor } in
      let s = R2c_runtime.Policy.Backoff_state.create ~cfg ~seed () in
      let delays =
        List.init 12 (fun _ -> R2c_runtime.Policy.Backoff_state.next_delay s)
      in
      let rec monotone = function
        | a :: (b :: _ as tl) -> a <= b && monotone tl
        | _ -> true
      in
      monotone delays
      && List.for_all (fun d -> d >= cfg.base && d <= cfg.cap) delays)

let prop_breaker_quarantines_within_window =
  Q.Test.make ~count:200 ~name:"circuit breaker trips on max_crashes within window"
    Q.(pair small_nat (int_range 2 8))
    (fun (seed, max_crashes) ->
      let cfg = { R2c_runtime.Policy.default_backoff with max_crashes } in
      let s = R2c_runtime.Policy.Backoff_state.create ~cfg ~seed () in
      (* crashes packed well inside one window: the Nth must trip it *)
      let step = cfg.window / (2 * max_crashes) in
      let tripped = ref false in
      for i = 0 to max_crashes - 1 do
        let now = i * step in
        let t = R2c_runtime.Policy.Backoff_state.record_crash s ~now in
        if i < max_crashes - 1 then assert (not t) else tripped := t
      done;
      let now = (max_crashes - 1) * step in
      !tripped
      && R2c_runtime.Policy.Backoff_state.quarantined s ~now
      && R2c_runtime.Policy.Backoff_state.quarantined_until s = now + cfg.quarantine
      && not
           (R2c_runtime.Policy.Backoff_state.quarantined s
              ~now:(now + cfg.quarantine + 1)))

let prop_breaker_spaced_crashes_never_trip =
  Q.Test.make ~count:200 ~name:"crashes spaced past the window never trip the breaker"
    Q.(pair small_nat (int_range 2 6))
    (fun (seed, max_crashes) ->
      let cfg = { R2c_runtime.Policy.default_backoff with max_crashes } in
      let s = R2c_runtime.Policy.Backoff_state.create ~cfg ~seed () in
      let gap = cfg.window + 1 in
      List.for_all not
        (List.init (3 * max_crashes) (fun i ->
             R2c_runtime.Policy.Backoff_state.record_crash s ~now:(i * gap))))

let suite =
  [
    ( "properties",
      List.map QCheck_alcotest.to_alcotest
        [
          prop_random_programs_differential;
          prop_random_programs_push_setup;
          prop_seed_determinism;
          prop_rng_bounds;
          prop_rng_shuffle_permutes;
          prop_rng_sample_distinct;
          prop_cluster_partition;
          prop_cluster_gaps;
          prop_cluster_internal_gaps;
          prop_geomean_bounds;
          prop_median_member_or_mean;
          prop_btra_invariants;
          prop_text_roundtrip;
          prop_le64_roundtrip;
          prop_slice_reconstructs;
          prop_heap_no_overlap;
          prop_guess_decreasing;
          prop_pick_bounds;
          prop_backoff_monotone_capped;
          prop_breaker_quarantines_within_window;
          prop_breaker_spaced_crashes_never_trip;
        ] );
  ]
