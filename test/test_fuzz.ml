(* Differential fuzzing subsystem: generator v2, cross-config oracle,
   shrinker, corpus replay. *)

module Gen = R2c_fuzz.Gen
module Genprog = R2c_workloads.Genprog
module Oracle = R2c_fuzz.Oracle
module Campaign = R2c_fuzz.Campaign
module Corpus = R2c_fuzz.Corpus
module D = R2c_core.Dconfig

let test_v2_validates_and_runs () =
  for seed = 1 to 10 do
    let p = Gen.v2 ~seed () in
    (match Validate.check p with
    | [] -> ()
    | e :: _ ->
        Alcotest.failf "seed %d does not validate: %s" seed
          (Validate.error_to_string e));
    match Interp.run ~fuel:5_000_000 p with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "seed %d reference run failed: %s" seed
          (Interp.error_to_string e)
  done

let test_genprog_delegates () =
  (* The scalability generator and the fuzzer share one implementation;
     equal seeds must produce identical programs. *)
  let a = Genprog.generate ~seed:7 ~funcs:12 in
  let b = Gen.layered ~seed:7 ~funcs:12 in
  Alcotest.(check bool) "same program" true (a = b)

let test_roundtrip_50 () =
  for seed = 1 to 50 do
    let p = if seed mod 2 = 0 then Gen.v2 ~seed () else Gen.layered ~seed ~funcs:6 in
    let s = Text.to_string p in
    match Text.parse s with
    | Error e -> Alcotest.failf "seed %d reparse failed: %s" seed (Text.error_to_string e)
    | Ok q ->
        if Text.to_string q <> s then
          Alcotest.failf "seed %d round-trip not identical" seed
  done

let test_matrix_covers_every_knob () =
  let cfgs = List.map snd Oracle.matrix in
  let has name pred = Alcotest.(check bool) name true (List.exists pred cfgs) in
  Alcotest.(check bool) "baseline present" true
    (List.mem_assoc "baseline" Oracle.matrix
    && List.assoc "baseline" Oracle.matrix = D.baseline);
  let btra pred c = match c.D.btra with Some b -> pred b | None -> false in
  has "btra push" (btra (fun b -> b.D.setup = D.Push));
  has "btra sse" (btra (fun b -> b.D.setup = D.Sse));
  has "btra avx" (btra (fun b -> b.D.setup = D.Avx));
  has "btra avx512" (btra (fun b -> b.D.setup = D.Avx512));
  has "btra to_builtins" (btra (fun b -> b.D.to_builtins));
  has "btra check_after_return" (btra (fun b -> b.D.check_after_return));
  has "btdp" (fun c -> c.D.btdp <> None);
  has "nops" (fun c -> c.D.nops <> None);
  has "prolog traps" (fun c -> c.D.prolog_traps <> None);
  has "function shuffle" (fun c -> c.D.shuffle_functions);
  has "global shuffle + padding" (fun c -> c.D.shuffle_globals && c.D.global_padding_max > 0);
  has "slot shuffle + padding" (fun c -> c.D.shuffle_stack_slots && c.D.slot_padding_max > 0);
  has "regalloc randomization" (fun c -> c.D.randomize_regalloc);
  has "oia" (fun c -> c.D.oia);
  has "xom" (fun c -> c.D.xom);
  has "aslr" (fun c -> c.D.aslr);
  has "booby-trap functions" (fun c -> c.D.booby_trap_funcs > 0)

let test_clean_campaign () =
  let r = Campaign.run ~seed:5 ~count:3 () in
  Alcotest.(check int) "programs" 3 r.Campaign.programs;
  Alcotest.(check int) "skipped" 0 r.Campaign.skipped;
  Alcotest.(check int) "divergences" 0 r.Campaign.divergences;
  Alcotest.(check int) "points per program" 13 r.Campaign.points

let test_planted_miscompile () =
  let out_dir = Filename.concat (Filename.get_temp_dir_name ()) "r2c_fuzz_test" in
  let sc = Campaign.self_check ~out_dir ~seed:11 () in
  Alcotest.(check bool) "caught" true sc.Campaign.caught;
  Alcotest.(check bool) "shrunk to <= 10 instructions" true
    (sc.Campaign.shrunk_size <= 10 && sc.Campaign.shrunk_size > 0);
  Alcotest.(check bool) "reproducer round-trips and still fails" true
    sc.Campaign.roundtrip_ok;
  Alcotest.(check bool) "shrunk program still fails" true sc.Campaign.still_fails;
  (* The reproducer on disk is a valid .r2c that still contains the Sub
     the plant miscompiles. *)
  match Corpus.load sc.Campaign.reproducer with
  | Error e -> Alcotest.fail ("reproducer unreadable: " ^ e)
  | Ok p ->
      Alcotest.(check bool) "reproducer validates" true (Validate.check p = []);
      let has_sub =
        List.exists
          (fun (f : Ir.func) ->
            List.exists
              (fun (b : Ir.block) ->
                List.exists
                  (function Ir.Binop (_, Ir.Sub, _, _) -> true | _ -> false)
                  b.Ir.body)
              f.Ir.blocks)
          p.Ir.funcs
      in
      Alcotest.(check bool) "reproducer keeps the planted Sub" true has_sub

let test_replay_missing_dir_vacuous () =
  Alcotest.(check int) "no files, no failures" 0
    (List.length (Campaign.replay ~dir:"no_such_corpus_dir" ()))

let test_replay_corpus () =
  (* Replays every reproducer committed under test/corpus/; passes
     vacuously while the corpus is empty. *)
  match Campaign.replay ~dir:"corpus" () with
  | [] -> ()
  | (path, err) :: _ -> Alcotest.failf "corpus replay failed: %s: %s" path err

let suite =
  [
    ( "fuzz",
      [
        Alcotest.test_case "generator v2 validates and runs" `Quick
          test_v2_validates_and_runs;
        Alcotest.test_case "genprog delegates to shared generator" `Quick
          test_genprog_delegates;
        Alcotest.test_case "text round-trip on 50 generated programs" `Quick
          test_roundtrip_50;
        Alcotest.test_case "oracle matrix covers every knob" `Quick
          test_matrix_covers_every_knob;
        Alcotest.test_case "clean campaign finds no divergence" `Quick
          test_clean_campaign;
        Alcotest.test_case "planted miscompile caught and shrunk" `Quick
          test_planted_miscompile;
        Alcotest.test_case "replay of missing corpus is vacuous" `Quick
          test_replay_missing_dir_vacuous;
        Alcotest.test_case "replay committed corpus" `Quick test_replay_corpus;
      ] );
  ]
