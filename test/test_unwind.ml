(* Unwinder edge cases: walking from inside a prologue (before/while the
   frame is being set up) and frames whose RA slot holds a booby-trap
   address. *)

open R2c_machine
module Defenses = R2c_defenses.Defenses

let fib_image () = R2c_compiler.Driver.compile (Samples.fib_prog 10)

let break_at cpu addr =
  match Cpu.run_until cpu ~fuel:1_000_000 ~break:[ addr ] with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "breakpoint never reached"

let rsp cpu = cpu.Cpu.regs.(Insn.reg_index Insn.RSP)

let fib_row img =
  let entry = Image.symbol img "fib" in
  match
    Array.fold_left
      (fun acc (e, _, f, p) -> if e = entry then Some (f, p) else acc)
      None img.Image.unwind_funcs
  with
  | Some r -> r
  | None -> Alcotest.fail "no unwind row for fib"

(* At function entry the prologue has not run: rsp still points at the RA
   slot and the walk must recover the caller chain from there. *)
let test_unwind_at_entry () =
  let img = fib_image () in
  let cpu = Loader.load ~profile:Cost.epyc_rome img in
  break_at cpu (Image.symbol img "fib");
  let bt = Unwind.backtrace cpu.Cpu.mem img ~ra_slot:(rsp cpu) in
  Alcotest.(check int) "one frame" 1 (List.length bt);
  match Image.func_of_addr img (List.hd bt) with
  | Some f -> Alcotest.(check string) "returns into main" "main" f.Image.fname
  | None -> Alcotest.fail "return address outside every function"

(* Mid-prologue: step through fib's frame setup; once the CIE-row
   adjustment (frame + post words) has been applied to rsp, the RA slot is
   back at rsp + frame + 8*post and the walk must agree with the
   entry-time one. *)
let test_unwind_mid_prologue () =
  let img = fib_image () in
  let cpu = Loader.load ~profile:Cost.epyc_rome img in
  let entry = Image.symbol img "fib" in
  break_at cpu entry;
  let frame, post = fib_row img in
  Alcotest.(check bool) "fib allocates a frame" true (frame > 0);
  let rsp0 = rsp cpu in
  let reference = Unwind.backtrace cpu.Cpu.mem img ~ra_slot:rsp0 in
  let steps = ref 0 in
  while rsp cpu <> rsp0 - frame - (8 * post) && !steps < 20 do
    Cpu.step cpu;
    incr steps
  done;
  Alcotest.(check bool) "prologue completed" true (rsp cpu = rsp0 - frame - (8 * post));
  let bt =
    Unwind.backtrace cpu.Cpu.mem img ~ra_slot:(rsp cpu + frame + (8 * post))
  in
  Alcotest.(check (list int)) "same chain as at entry" reference bt

(* Booby-trap addresses are decoys, never legitimate return addresses: no
   booby-trap entry may appear in the FDE rows, and a frame whose RA slot
   holds one unwinds to nothing instead of fabricating frames. *)
let test_unwind_booby_trap_frame () =
  let img = Defenses.build_vulnapp Defenses.r2c ~seed:9 in
  let cpu = Loader.load ~profile:Cost.epyc_rome img in
  let traps =
    List.filter (fun (f : Image.func_info) -> f.is_booby_trap) img.Image.funcs
  in
  Alcotest.(check bool) "image has booby traps" true (traps <> []);
  List.iter
    (fun (f : Image.func_info) ->
      Alcotest.(check bool) "booby trap is not an unwind site" false
        (Hashtbl.mem img.Image.unwind_sites f.entry))
    traps;
  let slot = Addr.stack_top - 256 in
  Mem.poke_u64 cpu.Cpu.mem slot (List.hd traps).Image.entry;
  Alcotest.(check (list int)) "no frames from a booby-trap RA" []
    (Unwind.backtrace cpu.Cpu.mem img ~ra_slot:slot)

(* An unmapped RA slot must end the walk, not raise. *)
let test_unwind_unmapped_slot () =
  let img = fib_image () in
  let cpu = Loader.load ~profile:Cost.epyc_rome img in
  Alcotest.(check (list int)) "unmapped slot" []
    (Unwind.backtrace cpu.Cpu.mem img ~ra_slot:(Addr.stack_top + 0x10_0000))

let suite =
  [
    ( "unwind-edge",
      [
        Alcotest.test_case "unwind at function entry" `Quick test_unwind_at_entry;
        Alcotest.test_case "unwind mid-prologue" `Quick test_unwind_mid_prologue;
        Alcotest.test_case "booby-trap frame" `Quick test_unwind_booby_trap_frame;
        Alcotest.test_case "unmapped slot" `Quick test_unwind_unmapped_slot;
      ] );
  ]
