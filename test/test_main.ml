(* Test runner: aggregates every suite. Suites live in their own modules,
   one per library module group. *)

let () =
  Alcotest.run "r2c"
    (Test_rng.suite @ Test_stats.suite @ Test_mem.suite @ Test_heap.suite
   @ Test_insn.suite @ Test_cpu.suite @ Test_ir.suite @ Test_compiler.suite
   @ Test_core.suite @ Test_attacks.suite @ Test_properties.suite
   @ Test_workloads.suite @ Test_defenses.suite @ Test_runtime.suite @ Test_harness.suite
   @ Test_extensions.suite @ Test_emit.suite @ Test_text.suite @ Test_analysis.suite @ Test_linker.suite @ Test_table.suite
   @ Test_audit.suite @ Test_unwind.suite @ Test_obs.suite @ Test_fuzz.suite
   @ Test_perf.suite @ Test_parallel.suite @ Test_fleet.suite
   @ Test_dataflow.suite @ Test_replay.suite @ Test_rerand.suite @ Test_jit.suite)
