(* Supervision layer: restart policies, the worker pool, and the chaos
   harness acceptance properties (availability under Blind ROP, rate-0
   injector equivalence). *)

open R2c_machine
module Policy = R2c_runtime.Policy
module Pool = R2c_runtime.Pool
module Chaos = R2c_harness.Chaos
module Vulnapp = R2c_workloads.Vulnapp

let victim_cfg = { R2c_core.Dconfig.full_checked with R2c_core.Dconfig.aslr = false }
let build ~seed = Vulnapp.build ~seed victim_cfg

let make_pool ?(policy = Policy.Same_image) ?(cfg = Pool.default_config) () =
  Pool.create ~cfg:{ cfg with Pool.policy } ~build ~break_sym:Vulnapp.break_symbol ()

(* --- pool request semantics --- *)

let test_pool_serves_legit () =
  let pool = make_pool () in
  let total_lines = ref 0 in
  for _ = 1 to 25 do
    match Pool.submit pool "GET /status" with
    | Pool.Served { cycles; lines } ->
        Alcotest.(check bool) "cycles charged" true (cycles > 0);
        total_lines := !total_lines + lines
    | _ -> Alcotest.fail "legit request not served"
  done;
  (* only the echo handler (every third dispatch) prints, but the client
     must have seen output over the batch *)
  Alcotest.(check bool) "responses visible" true (!total_lines > 0);
  let s = Pool.stats pool in
  Alcotest.(check int) "all served" 25 s.Pool.served;
  Alcotest.(check int) "none dropped" 0 s.Pool.dropped;
  Alcotest.(check (float 0.0)) "availability 1.0" 1.0 (Pool.availability s);
  Alcotest.(check bool) "clock advanced" true (Pool.clock pool > 0)

let test_pool_recycles_children () =
  let cfg = { Pool.default_config with Pool.requests_per_child = 1 } in
  let pool = make_pool ~cfg () in
  for _ = 1 to 8 do
    match Pool.submit pool "GET /status" with
    | Pool.Served _ -> ()
    | _ -> Alcotest.fail "not served"
  done;
  Alcotest.(check bool) "children recycled" true ((Pool.stats pool).Pool.recycles >= 5)

let test_pool_timeout_and_retry () =
  (* A request cap far below the handler's cost: every attempt times out,
     retries burn through the other workers, the request is dropped. *)
  let cfg = { Pool.default_config with Pool.request_fuel = 40; Pool.max_retries = 2 } in
  let pool = make_pool ~cfg () in
  (match Pool.submit pool "GET /status" with
  | Pool.Rejected _ | Pool.Dropped -> ()
  | Pool.Served _ -> Alcotest.fail "served under a 40-instruction cap");
  let s = Pool.stats pool in
  Alcotest.(check bool) "timeouts recorded" true (s.Pool.timeouts >= 1);
  Alcotest.(check bool) "retries recorded" true (s.Pool.retried >= 1);
  Alcotest.(check int) "dropped" 1 s.Pool.dropped

let test_pool_crash_restarts_worker () =
  (* A probe that smashes far past the buffer crashes the worker; the pool
     restarts it and keeps serving. *)
  let pool = make_pool () in
  let probe = String.make 400 'A' in
  (match Pool.submit ~retries:0 pool probe with
  | Pool.Rejected _ | Pool.Dropped -> ()
  | Pool.Served _ -> Alcotest.fail "overflow probe served");
  let s = Pool.stats pool in
  Alcotest.(check bool) "crash recorded" true (s.Pool.crashes >= 1);
  Alcotest.(check bool) "restart recorded" true (s.Pool.restarts >= 1);
  match Pool.submit pool "GET /status" with
  | Pool.Served _ -> ()
  | _ -> Alcotest.fail "pool dead after one crash"

(* --- injected faults surface as ordinary crashes --- *)

let test_spurious_injection_crashes () =
  let inject =
    Inject.create ~rates:{ Inject.zero with Inject.spurious_fault = 1.0 } ~seed:3 ()
  in
  let p = Process.start ~inject (build ~seed:5) in
  (match Process.run p with
  | Process.Crashed (Fault.Injected _) -> ()
  | other -> Alcotest.failf "expected injected fault, got %s" (Process.outcome_to_string other));
  Alcotest.(check bool) "injection counted" true
    ((Inject.counters inject).Inject.spurious_faults >= 1)

(* --- the guardrail: rate-0 injection is a no-op --- *)

let test_rate_zero_equivalence () =
  Alcotest.(check bool) "seed 5: outcome, insns, cycles identical" true
    (Chaos.baseline_equivalence ~seed:5 ());
  Alcotest.(check bool) "seed 23: outcome, insns, cycles identical" true
    (Chaos.baseline_equivalence ~seed:23 ())

(* --- the acceptance property: reactive policies out-survive same-image ---

   One deterministic seed, full Blind-ROP campaign against each policy.
   Under Same_image the fork-uniform pool is the textbook BROP target: the
   attacker reads the stack byte-for-byte, locates the return address and
   sweeps gadgets until the sensitive(marker) call lands. Rerandomize and
   Reactive churn the layout under the attacker's feet; the campaign dies
   in a give-up and legit availability stays strictly higher. *)

let test_chaos_acceptance () =
  let seed = 11 and legit_total = 600 in
  let base = Chaos.run_policy ~seed ~legit_total Policy.Same_image in
  let rerand = Chaos.run_policy ~seed ~legit_total Policy.Rerandomize in
  let reactive =
    Chaos.run_policy ~seed ~legit_total (Policy.Reactive Policy.Escalate_rerandomize)
  in
  Alcotest.(check bool) "same-image compromised" true base.Chaos.compromised;
  Alcotest.(check bool) "same-image saw detections" true
    (base.Chaos.stats.Pool.detections > 0);
  Alcotest.(check bool) "rerandomize not compromised" false rerand.Chaos.compromised;
  Alcotest.(check bool) "reactive not compromised" false reactive.Chaos.compromised;
  Alcotest.(check bool) "reactive escalated" true reactive.Chaos.escalated;
  Alcotest.(check bool)
    (Printf.sprintf "rerandomize availability strictly higher (%.3f > %.3f)"
       rerand.Chaos.availability base.Chaos.availability)
    true
    (rerand.Chaos.availability > base.Chaos.availability);
  Alcotest.(check bool)
    (Printf.sprintf "reactive availability strictly higher (%.3f > %.3f)"
       reactive.Chaos.availability base.Chaos.availability)
    true
    (reactive.Chaos.availability > base.Chaos.availability)

let suite =
  [
    ( "runtime",
      [
        Alcotest.test_case "pool serves legit traffic" `Quick test_pool_serves_legit;
        Alcotest.test_case "requests_per_child recycles" `Quick test_pool_recycles_children;
        Alcotest.test_case "timeout, retry, drop" `Quick test_pool_timeout_and_retry;
        Alcotest.test_case "crash restarts worker" `Quick test_pool_crash_restarts_worker;
        Alcotest.test_case "spurious injection crashes" `Quick test_spurious_injection_crashes;
        Alcotest.test_case "rate-0 injection is exact no-op" `Quick test_rate_zero_equivalence;
        Alcotest.test_case "reactive out-survives same-image" `Slow test_chaos_acceptance;
      ] );
  ]
